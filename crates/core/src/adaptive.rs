//! Adaptive decompression for flat-top waveforms (Section V-D, Figure 13).
//!
//! Flat-top pulses (cross-resonance drives, readout) spend most of their
//! duration at a constant amplitude. The constant segment needs neither
//! the IDCT nor repeated memory reads: a single repeat-run codeword is
//! decoded straight into the buffer in front of the DAC, so both the
//! memory and the IDCT engine idle for the whole plateau — the extra
//! power savings of Figure 19.
//!
//! **When it wins:** any waveform whose plateau dominates its duration —
//! the longer the flat top relative to the ramps, the more the ratio and
//! the bypass fraction improve over the plain windowed codec. It loses
//! (returns [`CompressError::NoPlateau`]) on pulses without a
//! window-aligned constant run of at least the configured minimum, so
//! callers typically try adaptive first and fall back to
//! [`Compressor::compress`].
//!
//! The encoder follows the allocating-vs-reuse convention:
//! [`AdaptiveCompressor::compress`] wraps
//! [`AdaptiveCompressor::compress_with`], which wraps
//! [`AdaptiveCompressor::compress_into`] — the innermost form threads a
//! caller-owned [`crate::engine::EncodeScratch`] through the ramp
//! segments, encodes them from sub-slices without intermediate waveform
//! copies, and refills a reused [`AdaptiveCompressed`] slot segment by
//! segment so a warm re-encode allocates nothing;
//! [`AdaptiveCompressed::decompress_with`] is the decode twin.

use crate::compress::{CompressedWaveform, Compressor, Variant};
use crate::engine::{DecompressionEngine, EngineStats};
use crate::CompressError;
use compaqt_dsp::fixed::Q15;
use compaqt_dsp::metrics::CompressionRatio;
use compaqt_dsp::rle::{CodedWord, RleEncoder};
use compaqt_pulse::waveform::Waveform;
use serde::{Deserialize, Serialize};

/// One segment of an adaptively compressed waveform.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Segment {
    /// A DCT-compressed region (rise or fall ramp).
    Windows(CompressedWaveform),
    /// A constant plateau: per-channel literal value + repeat run, decoded
    /// with the IDCT bypassed.
    Constant {
        /// Plateau I value.
        i_value: Q15,
        /// Plateau Q value.
        q_value: Q15,
        /// Plateau length in samples.
        len: usize,
    },
}

/// An adaptively compressed flat-top waveform.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveCompressed {
    /// Waveform name.
    pub name: String,
    /// Original sample count.
    pub n_samples: usize,
    /// DAC sampling rate in GS/s.
    pub sample_rate_gs: f64,
    /// The variant used for the ramp segments.
    pub variant: Variant,
    /// The segments in playback order.
    pub segments: Vec<Segment>,
}

impl AdaptiveCompressed {
    /// An empty slot for [`AdaptiveCompressor::compress_into`] to fill.
    /// The variant placeholder is overwritten on the first fill.
    pub fn empty() -> Self {
        AdaptiveCompressed {
            name: String::new(),
            n_samples: 0,
            sample_rate_gs: 0.0,
            variant: Variant::Delta,
            segments: Vec::new(),
        }
    }

    /// Compression ratio including the plateau codewords. Saturating,
    /// so hostile sample-count claims cannot overflow the accounting.
    pub fn ratio(&self) -> CompressionRatio {
        let old = self.n_samples.saturating_mul(crate::compress::SAMPLE_BYTES);
        let new_bits: usize = self
            .segments
            .iter()
            .map(|s| match s {
                Segment::Windows(z) => z.i.size_bits().saturating_add(z.q.size_bits()),
                Segment::Constant { len, .. } => {
                    // Per channel: one literal + ceil(run/MAX_RUN) codewords.
                    let cws = plateau_codewords(*len);
                    2 * (1 + cws) * 16
                }
            })
            .sum();
        CompressionRatio::new(old, new_bits.div_ceil(8).max(1))
    }

    /// Fraction of output samples produced with the IDCT bypassed.
    pub fn bypass_fraction(&self) -> f64 {
        let bypassed: usize = self
            .segments
            .iter()
            .map(|s| match s {
                Segment::Constant { len, .. } => *len,
                _ => 0,
            })
            .sum();
        bypassed as f64 / self.n_samples as f64
    }

    /// Decompresses, returning the waveform and engine stats (plateau
    /// samples are accounted as bypassed).
    ///
    /// # Errors
    ///
    /// Returns an error for malformed streams.
    pub fn decompress(&self) -> Result<(Waveform, EngineStats), CompressError> {
        let engine = DecompressionEngine::for_variant(self.variant)?;
        let mut stats = EngineStats::default();
        // Grown by decoded data only — never pre-sized from the
        // (untrusted) n_samples claim.
        let mut i: Vec<f64> = Vec::new();
        let mut q: Vec<f64> = Vec::new();
        for seg in &self.segments {
            match seg {
                Segment::Windows(z) => {
                    let mut s = EngineStats::default();
                    i.extend(engine.decode_channel(&z.i, z.n_samples, &mut s)?);
                    q.extend(engine.decode_channel(&z.q, z.n_samples, &mut s)?);
                    stats.merge(&s);
                }
                Segment::Constant { i_value, q_value, len } => {
                    check_plateau_claim(*len, self.n_samples.saturating_sub(i.len()))?;
                    // One literal word + codeword per channel; the run is
                    // produced without memory traffic or IDCT work.
                    let cws = plateau_codewords(*len);
                    stats.memory_words_read += 2 * (1 + cws);
                    stats.rle_codewords += 2 * cws;
                    stats.bypassed_samples += 2 * len;
                    stats.output_samples += 2 * len;
                    stats.cycles += *len as u64;
                    i.extend(std::iter::repeat_n(i_value.to_f64(), *len));
                    q.extend(std::iter::repeat_n(q_value.to_f64(), *len));
                }
            }
        }
        i.truncate(self.n_samples);
        q.truncate(self.n_samples);
        let wf = crate::engine::checked_waveform(&self.name, i, q, self.sample_rate_gs)?;
        Ok((wf, stats))
    }

    /// Decompresses into caller-provided buffers through a shared engine
    /// and scratch — the zero-allocation twin of
    /// [`AdaptiveCompressed::decompress`], bit-exact with it. Windowed
    /// segments chain through
    /// [`DecompressionEngine::decode_channel_into`]'s append semantics;
    /// plateau runs are expanded straight into the output buffers with
    /// the IDCT (and the scratch) idle, exactly like the hardware bypass.
    ///
    /// # Errors
    ///
    /// Returns an error for malformed streams or an engine whose variant
    /// does not match.
    pub fn decompress_with(
        &self,
        engine: &DecompressionEngine,
        scratch: &mut crate::engine::DecodeScratch,
        i_out: &mut Vec<f64>,
        q_out: &mut Vec<f64>,
    ) -> Result<EngineStats, CompressError> {
        if engine.variant() != self.variant {
            return Err(CompressError::EngineMismatch {
                expected: self.variant,
                got: engine.variant(),
            });
        }
        let mut stats = EngineStats::default();
        i_out.clear();
        q_out.clear();
        for seg in &self.segments {
            match seg {
                Segment::Windows(z) => {
                    let mut s = EngineStats::default();
                    engine.decode_channel_into(&z.i, z.n_samples, scratch, i_out, &mut s)?;
                    engine.decode_channel_into(&z.q, z.n_samples, scratch, q_out, &mut s)?;
                    stats.merge(&s);
                }
                Segment::Constant { i_value, q_value, len } => {
                    check_plateau_claim(*len, self.n_samples.saturating_sub(i_out.len()))?;
                    let cws = plateau_codewords(*len);
                    stats.memory_words_read += 2 * (1 + cws);
                    stats.rle_codewords += 2 * cws;
                    stats.bypassed_samples += 2 * len;
                    stats.output_samples += 2 * len;
                    stats.cycles += *len as u64;
                    i_out.extend(std::iter::repeat_n(i_value.to_f64(), *len));
                    q_out.extend(std::iter::repeat_n(q_value.to_f64(), *len));
                }
            }
        }
        i_out.truncate(self.n_samples);
        q_out.truncate(self.n_samples);
        crate::engine::check_channel_shapes(i_out.len(), q_out.len())?;
        crate::engine::check_sample_rate(self.sample_rate_gs)?;
        Ok(stats)
    }

    /// The plateau as raw coded words (what actually sits in memory for
    /// the constant segment). Segments whose length claim decode would
    /// reject (zero, or beyond the representable run ceiling) contribute
    /// no words — materializing a hostile multi-petabyte claim here
    /// would be the very amplification the decode guards exist to block.
    pub fn plateau_words(&self) -> Vec<CodedWord> {
        let enc = RleEncoder::new();
        self.segments
            .iter()
            .filter_map(|s| match s {
                Segment::Constant { i_value, len, .. } if (1..=MAX_PLATEAU_RUN).contains(len) => {
                    Some(enc.encode_constant_run(i_value.raw(), *len))
                }
                _ => None,
            })
            .flatten()
            .collect()
    }
}

/// Hard ceiling on a single plateau claim: 256 maximal repeat codewords
/// (~4.2M samples, ~0.9 ms at 4.54 GS/s — three orders of magnitude
/// beyond any control pulse's flat top). Bounds the memory a hostile
/// `Segment::Constant` length field can demand before decode rejects it.
const MAX_PLATEAU_RUN: usize = 256 * compaqt_dsp::rle::MAX_RUN as usize;

/// Per-channel run-length codewords a plateau of `len` samples occupies:
/// one literal plus `ceil((len-1)/MAX_RUN)` repeat codewords (saturating
/// for hostile zero-length claims, which decode rejects anyway).
fn plateau_codewords(len: usize) -> usize {
    len.saturating_sub(1).div_ceil(compaqt_dsp::rle::MAX_RUN as usize).max(1)
}

/// Validates a `Segment::Constant` length claim before any sample is
/// produced from it — the IDCT-bypass twin of the engine's
/// window-claim guard: plateau expansion is driven purely by a metadata
/// field, so it must be bounded by the waveform's remaining sample
/// budget and an absolute sanity ceiling, never trusted raw.
fn check_plateau_claim(len: usize, remaining: usize) -> Result<(), CompressError> {
    if len == 0 {
        return Err(CompressError::MalformedStream { reason: "zero-length plateau segment" });
    }
    if len > remaining {
        return Err(CompressError::MalformedStream {
            reason: "plateau segment claims more samples than the waveform",
        });
    }
    if len > MAX_PLATEAU_RUN {
        return Err(CompressError::MalformedStream {
            reason: "plateau segment exceeds the maximum representable run",
        });
    }
    Ok(())
}

/// Compresses flat-top waveforms with the adaptive scheme.
#[derive(Debug, Clone, Copy)]
pub struct AdaptiveCompressor {
    inner: Compressor,
    /// Minimum plateau length (in samples) worth bypassing.
    min_plateau: usize,
}

impl AdaptiveCompressor {
    /// Creates an adaptive compressor around a windowed variant.
    ///
    /// # Panics
    ///
    /// Panics if the variant is not windowed (adaptive mode segments the
    /// waveform at window granularity).
    pub fn new(variant: Variant) -> Self {
        assert!(
            variant.window_size().is_some(),
            "adaptive compression requires a windowed variant"
        );
        AdaptiveCompressor { inner: Compressor::new(variant), min_plateau: 64 }
    }

    /// Sets the minimum plateau length worth bypassing.
    pub fn with_min_plateau(mut self, samples: usize) -> Self {
        self.min_plateau = samples;
        self
    }

    /// Sets the ramp-segment threshold.
    pub fn with_threshold(mut self, threshold: f64) -> Self {
        self.inner = self.inner.with_threshold(threshold);
        self
    }

    /// Compresses a flat-top waveform: DCT windows for the ramps, a single
    /// repeat-run for the plateau.
    ///
    /// Allocating wrapper over [`AdaptiveCompressor::compress_with`].
    ///
    /// # Errors
    ///
    /// Returns [`CompressError::NoPlateau`] if the waveform has no plateau
    /// of at least the configured minimum length.
    pub fn compress(&self, wf: &Waveform) -> Result<AdaptiveCompressed, CompressError> {
        self.compress_with(wf, &mut crate::engine::EncodeScratch::new())
    }

    /// Compresses a flat-top waveform, threading all ramp-segment working
    /// memory through a caller-owned scratch — bit-exact with
    /// [`AdaptiveCompressor::compress`] (which wraps this). Ramp segments
    /// are encoded straight from sample sub-slices, so no intermediate
    /// sub-waveform copies are made; only the returned segment list and
    /// its compressed streams are allocated.
    ///
    /// # Errors
    ///
    /// Returns [`CompressError::NoPlateau`] if the waveform has no plateau
    /// of at least the configured minimum length.
    pub fn compress_with(
        &self,
        wf: &Waveform,
        scratch: &mut crate::engine::EncodeScratch,
    ) -> Result<AdaptiveCompressed, CompressError> {
        let mut out = AdaptiveCompressed::empty();
        self.compress_into(wf, scratch, &mut out)?;
        Ok(out)
    }

    /// Compresses a flat-top waveform into a reused output slot — the
    /// fully buffer-reusing form that [`AdaptiveCompressor::compress_with`]
    /// wraps, bit-exact with it. Segment slots are matched in playback
    /// order: a ramp reuses the [`Segment::Windows`] stream already
    /// sitting at its index (via the windowed encoder's slot reuse),
    /// the plateau overwrites its slot in place, and stale trailing
    /// segments are
    /// truncated. Re-encoding waveforms of a stable segment layout
    /// (e.g. a calibration loop re-fitting the same flat-top pulses)
    /// therefore allocates nothing once `out` and `scratch` are warm.
    ///
    /// # Errors
    ///
    /// Returns [`CompressError::NoPlateau`] if the waveform has no plateau
    /// of at least the configured minimum length (in which case `out` is
    /// left untouched). On mid-encode errors `out` holds a valid but
    /// unspecified mixture of old and new segments.
    pub fn compress_into(
        &self,
        wf: &Waveform,
        scratch: &mut crate::engine::EncodeScratch,
        out: &mut AdaptiveCompressed,
    ) -> Result<(), CompressError> {
        let ws = self.inner.variant().window_size().expect("validated in new()");
        let (start, len) = wf.flat_top_plateau(self.min_plateau).ok_or(CompressError::NoPlateau)?;
        // Align the plateau cut points to window boundaries so the ramp
        // segments are whole windows (the algorithm "treats the constant
        // period as a single window").
        let head_end = start.next_multiple_of(ws).min(wf.len());
        let plateau_end = ((start + len) / ws) * ws;
        if plateau_end <= head_end {
            return Err(CompressError::NoPlateau);
        }
        out.name.clear();
        out.name.push_str(wf.name());
        out.n_samples = wf.len();
        out.sample_rate_gs = wf.sample_rate_gs();
        out.variant = self.inner.variant();
        let mut idx = 0;
        if head_end > 0 {
            let z = windows_slot(&mut out.segments, idx);
            self.inner.compress_slices_into(
                "head",
                &wf.i()[..head_end],
                &wf.q()[..head_end],
                wf.sample_rate_gs(),
                scratch,
                z,
            )?;
            idx += 1;
        }
        let plateau = Segment::Constant {
            i_value: Q15::from_f64(wf.i()[head_end]),
            q_value: Q15::from_f64(wf.q()[head_end]),
            len: plateau_end - head_end,
        };
        if let Some(slot) = out.segments.get_mut(idx) {
            *slot = plateau;
        } else {
            out.segments.push(plateau);
        }
        idx += 1;
        if plateau_end < wf.len() {
            let z = windows_slot(&mut out.segments, idx);
            self.inner.compress_slices_into(
                "tail",
                &wf.i()[plateau_end..],
                &wf.q()[plateau_end..],
                wf.sample_rate_gs(),
                scratch,
                z,
            )?;
            idx += 1;
        }
        out.segments.truncate(idx);
        Ok(())
    }
}

/// Returns the [`Segment::Windows`] stream at `idx`, converting or
/// growing the slot as needed so an existing compressed stream's buffers
/// are reused whenever the segment layout is stable across fills.
fn windows_slot(segments: &mut Vec<Segment>, idx: usize) -> &mut CompressedWaveform {
    if idx >= segments.len() {
        segments.push(Segment::Windows(CompressedWaveform::empty()));
    } else if !matches!(segments[idx], Segment::Windows(_)) {
        segments[idx] = Segment::Windows(CompressedWaveform::empty());
    }
    match &mut segments[idx] {
        Segment::Windows(z) => z,
        Segment::Constant { .. } => unreachable!("slot converted to Windows above"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use compaqt_pulse::shapes::{GaussianSquare, PulseShape};

    fn flat_top() -> Waveform {
        // 100 ns flat-top at 4.54 GS/s (the Figure 19 experiment).
        GaussianSquare::new(454, 0.35, 12.0, 360).to_waveform("flat", 4.54)
    }

    #[test]
    fn adaptive_round_trip_is_accurate() {
        let wf = flat_top();
        let z = AdaptiveCompressor::new(Variant::IntDctW { ws: 16 }).compress(&wf).unwrap();
        let (restored, _) = z.decompress().unwrap();
        assert!(wf.mse(&restored) < 1e-4, "mse {:e}", wf.mse(&restored));
    }

    #[test]
    fn most_samples_bypass_the_idct() {
        let wf = flat_top();
        let z = AdaptiveCompressor::new(Variant::IntDctW { ws: 16 }).compress(&wf).unwrap();
        assert!(z.bypass_fraction() > 0.6, "bypass {}", z.bypass_fraction());
        let (_, stats) = z.decompress().unwrap();
        assert!(stats.bypassed_samples > stats.output_samples / 2);
    }

    #[test]
    fn adaptive_compresses_better_than_plain() {
        let wf = flat_top();
        let plain = Compressor::new(Variant::IntDctW { ws: 16 }).compress(&wf).unwrap();
        let adaptive = AdaptiveCompressor::new(Variant::IntDctW { ws: 16 }).compress(&wf).unwrap();
        assert!(
            adaptive.ratio().ratio() > plain.ratio().ratio(),
            "adaptive {} vs plain {}",
            adaptive.ratio(),
            plain.ratio()
        );
    }

    #[test]
    fn gaussian_has_no_plateau() {
        let wf = compaqt_pulse::shapes::Gaussian::new(160, 0.5, 40.0).to_waveform("G", 4.54);
        let err = AdaptiveCompressor::new(Variant::IntDctW { ws: 16 }).compress(&wf).unwrap_err();
        assert_eq!(err, CompressError::NoPlateau);
    }

    #[test]
    fn decompress_with_matches_allocating_path_bit_exactly() {
        let wf = flat_top();
        let z = AdaptiveCompressor::new(Variant::IntDctW { ws: 16 }).compress(&wf).unwrap();
        let (alloc, alloc_stats) = z.decompress().unwrap();
        let engine = DecompressionEngine::for_variant(z.variant).unwrap();
        let mut scratch = crate::engine::DecodeScratch::new();
        let (mut i, mut q) = (Vec::new(), Vec::new());
        let stats = z.decompress_with(&engine, &mut scratch, &mut i, &mut q).unwrap();
        assert_eq!(alloc.i(), &i[..]);
        assert_eq!(alloc.q(), &q[..]);
        assert_eq!(alloc_stats, stats);
    }

    #[test]
    fn compress_into_reused_slot_matches_allocating_path() {
        let wf = flat_top();
        let zc = AdaptiveCompressor::new(Variant::IntDctW { ws: 16 });
        let fresh = zc.compress(&wf).unwrap();
        let mut scratch = crate::engine::EncodeScratch::new();
        let mut slot = AdaptiveCompressed::empty();
        // Dirty the slot with a different layout first, then refill: the
        // stale trailing segments must be truncated and the result must be
        // identical to the allocating path.
        let small = AdaptiveCompressor::new(Variant::IntDctW { ws: 8 });
        small.compress_into(&wf, &mut scratch, &mut slot).unwrap();
        for _ in 0..3 {
            zc.compress_into(&wf, &mut scratch, &mut slot).unwrap();
            assert_eq!(fresh, slot);
        }
    }

    #[test]
    fn compress_into_leaves_slot_untouched_on_no_plateau() {
        let wf = flat_top();
        let zc = AdaptiveCompressor::new(Variant::IntDctW { ws: 16 });
        let mut scratch = crate::engine::EncodeScratch::new();
        let mut slot = AdaptiveCompressed::empty();
        zc.compress_into(&wf, &mut scratch, &mut slot).unwrap();
        let before = slot.clone();
        let gauss = compaqt_pulse::shapes::Gaussian::new(160, 0.5, 40.0).to_waveform("G", 4.54);
        let err = zc.compress_into(&gauss, &mut scratch, &mut slot).unwrap_err();
        assert_eq!(err, CompressError::NoPlateau);
        assert_eq!(before, slot);
    }

    #[test]
    fn decompress_with_rejects_mismatched_engine() {
        let wf = flat_top();
        let z = AdaptiveCompressor::new(Variant::IntDctW { ws: 8 }).compress(&wf).unwrap();
        let wrong = DecompressionEngine::for_variant(Variant::DctW { ws: 8 }).unwrap();
        let mut scratch = crate::engine::DecodeScratch::new();
        let (mut i, mut q) = (Vec::new(), Vec::new());
        let err = z.decompress_with(&wrong, &mut scratch, &mut i, &mut q).unwrap_err();
        assert!(matches!(err, CompressError::EngineMismatch { .. }), "got {err}");
    }

    #[test]
    fn plateau_words_are_two() {
        let wf = flat_top();
        let z = AdaptiveCompressor::new(Variant::IntDctW { ws: 16 }).compress(&wf).unwrap();
        // One literal + one repeat codeword for a sub-16k plateau.
        assert_eq!(z.plateau_words().len(), 2);
    }

    #[test]
    #[should_panic(expected = "windowed")]
    fn non_windowed_variant_rejected() {
        AdaptiveCompressor::new(Variant::DctN);
    }

    #[test]
    fn segments_cover_all_samples() {
        let wf = flat_top();
        let z = AdaptiveCompressor::new(Variant::IntDctW { ws: 8 }).compress(&wf).unwrap();
        let total: usize = z
            .segments
            .iter()
            .map(|s| match s {
                Segment::Windows(w) => w.n_samples,
                Segment::Constant { len, .. } => *len,
            })
            .sum();
        assert_eq!(total, wf.len());
    }
}
