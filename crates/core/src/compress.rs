//! The COMPAQT compiler module: compile-time waveform compression.
//!
//! Four variants are implemented, matching Table II plus the delta
//! baseline of Section IV-B:
//!
//! | variant | transform | hardware complexity |
//! |---|---|---|
//! | `Delta` | sample differences | trivial, but poor on zero crossings |
//! | `DCT-N` | one DCT over the whole waveform | high (N varies, N can be 1000+) |
//! | `DCT-W` | windowed float DCT (WS=8/16) | moderate (11/26 multipliers) |
//! | `int-DCT-W` | windowed HEVC integer DCT | low (shift-add only) |
//!
//! # The window/threshold encode model
//!
//! The pipeline per channel is: transform each window -> zero coefficients
//! below a threshold -> run-length encode the trailing zeros (Figure 8).
//! Per the paper, I and Q keep the same number of stored words per window
//! so the hardware decoder stays simple. Everything lossy happens in the
//! threshold (and, for the integer variants, coefficient rounding): a
//! smaller threshold keeps more coefficients per window, trading
//! compression ratio for reconstruction MSE. The optional window-word cap
//! ([`Compressor::with_max_window_words`]) additionally zeroes
//! coefficients past a fixed per-window budget so the banked memory can
//! be sized for a uniform worst case (Section V-A).
//!
//! # When each variant wins
//!
//! * **`int-DCT-W`** is the paper's design point: decompression hardware
//!   needs no multipliers, so it wins whenever the stream will be decoded
//!   by the modelled engine — use WS=16 by default, WS=8 only when the
//!   decoder's input buffer must be minimal (and see [`crate::overlap`]
//!   for its boundary-distortion fix).
//! * **`DCT-W`** is the float reference for the same window structure:
//!   marginally better MSE at the same threshold, but each hardware
//!   multiply is a real multiplier (Table IV) — use it to isolate how
//!   much fidelity the integer approximation costs.
//! * **`DCT-N`** achieves the highest ratios on long smooth waveforms
//!   (one giant window, one RLE tail) but its decoder must buffer and
//!   transform the whole waveform, and its plan depends on the waveform
//!   length — the keyed plan cache in
//!   [`EncodeScratch`]/[`crate::engine::DecodeScratch`] exists for
//!   mixed-length `DCT-N` libraries. Use it for capacity studies, not
//!   for the streaming engine.
//! * **`Delta`** is the Section IV-B baseline: cheap, lossless up to
//!   Q1.15, but defeated by any zero crossing (raw fallback). It wins
//!   only on monotone envelopes — in practice it exists to be compared
//!   against.
//!
//! # Allocating vs `_into`
//!
//! Like the decode side, every encoder has two bit-exact forms: the
//! allocating [`Compressor::compress`] (fresh buffers per call, the
//! historical API) and [`Compressor::compress_into`], which threads all
//! working memory through a caller-owned
//! [`EncodeScratch`] and rebuilds a reusable output
//! stream in place. Steady-state recompression of a warm library
//! performs zero heap allocations (see `tests/alloc_regression.rs`).

use crate::engine::EncodeScratch;
use crate::CompressError;
use compaqt_dsp::fixed::Q15;
use compaqt_dsp::metrics::CompressionRatio;
use compaqt_dsp::rle::{CodedWord, RleCodeword, MAX_COEFF, MIN_COEFF};
use compaqt_dsp::threshold::ThresholdSchedule;
use compaqt_pulse::waveform::Waveform;
use serde::{Deserialize, Serialize};

/// Bytes per stored word (all streams use 16-bit words).
pub const WORD_BYTES: usize = 2;

/// Bytes per uncompressed packed I+Q sample (two 16-bit channels).
pub const SAMPLE_BYTES: usize = 4;

/// A compression variant (Table II plus the delta baseline).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Variant {
    /// Base-delta compression of raw samples.
    Delta,
    /// Full-length DCT (window = entire waveform).
    DctN,
    /// Windowed floating-point DCT.
    DctW {
        /// Window size (4, 8, 16, 32 or 64).
        ws: usize,
    },
    /// Windowed HEVC-style integer DCT (the COMPAQT design point).
    IntDctW {
        /// Window size (4, 8, 16, 32 or 64).
        ws: usize,
    },
}

impl Variant {
    /// Short display name matching the paper's figures.
    pub fn label(&self) -> String {
        match self {
            Variant::Delta => "Delta".to_string(),
            Variant::DctN => "DCT-N".to_string(),
            Variant::DctW { ws } => format!("DCT-W (WS={ws})"),
            Variant::IntDctW { ws } => format!("int-DCT-W (WS={ws})"),
        }
    }

    /// The transform window size, if the variant is windowed.
    pub fn window_size(&self) -> Option<usize> {
        match self {
            Variant::DctW { ws } | Variant::IntDctW { ws } => Some(*ws),
            _ => None,
        }
    }

    fn validate(&self) -> Result<(), CompressError> {
        if let Some(ws) = self.window_size() {
            if !compaqt_dsp::intdct::SUPPORTED_SIZES.contains(&ws) {
                return Err(CompressError::UnsupportedWindow(ws));
            }
        }
        Ok(())
    }
}

/// Fixed-point scale (in bits) used to store *float* DCT coefficients in
/// 15-bit words: the largest scale such that the worst-case coefficient
/// magnitude `sqrt(n)` (a full-scale DC window) still fits.
pub(crate) fn float_coeff_scale_bits(n: usize) -> u32 {
    ((f64::from(MAX_COEFF) / (n as f64).sqrt()).log2().floor() as u32).min(14)
}

/// Extra right-shift applied to integer-DCT coefficients before storage so
/// a full-scale DC window fits the 15-bit word (the tag bit of the RLE
/// format costs one bit, the DC headroom another).
pub(crate) const INT_STORE_SHIFT: u32 = 2;

/// Rounding right-shift by [`INT_STORE_SHIFT`].
pub(crate) fn int_store_quantize(c: i32) -> i32 {
    (c + (1 << (INT_STORE_SHIFT - 1))) >> INT_STORE_SHIFT
}

/// Integer threshold equivalent to an orthonormal-domain `threshold` for
/// the int-DCT's native coefficient scale `2^(15 - log2(ws)/2)`.
pub(crate) fn int_threshold(threshold: f64, ws: usize) -> i32 {
    let scale = 2f64.powf(15.0 - (ws as f64).log2() / 2.0);
    (threshold * scale).round().max(1.0) as i32
}

/// One compressed channel (I or Q).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ChannelData {
    /// Windowed coded streams: one word list per transform window.
    Windows(Vec<Vec<CodedWord>>),
    /// Base + reduced-width deltas.
    Delta {
        /// First sample at full width.
        base: i16,
        /// Bit width of each stored delta (including sign).
        bits: u32,
        /// Deltas between consecutive samples, each within `bits` bits.
        deltas: Vec<i16>,
    },
    /// Uncompressed Q1.15 samples (delta fallback for zero-crossing
    /// waveforms).
    Raw(Vec<i16>),
}

impl ChannelData {
    /// Storage footprint in bits (saturating, so hostile `Delta` headers
    /// with absurd bit widths cannot overflow the accounting).
    pub fn size_bits(&self) -> usize {
        match self {
            ChannelData::Windows(windows) => windows.iter().map(|w| w.len() * 16).sum(),
            ChannelData::Delta { bits, deltas, .. } => {
                deltas.len().saturating_mul(*bits as usize).saturating_add(16 + 8)
            }
            ChannelData::Raw(samples) => samples.len() * 16,
        }
    }

    /// Number of 16-bit memory words occupied (delta bytes round up).
    pub fn words(&self) -> usize {
        self.size_bits().div_ceil(16)
    }

    /// Word counts per window (empty for non-windowed channels).
    pub fn window_word_counts(&self) -> Vec<usize> {
        match self {
            ChannelData::Windows(windows) => windows.iter().map(Vec::len).collect(),
            _ => Vec::new(),
        }
    }
}

/// A compressed waveform: both channels plus enough metadata to
/// reconstruct and to account storage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompressedWaveform {
    /// Waveform name (copied from the source).
    pub name: String,
    /// The variant that produced this stream.
    pub variant: Variant,
    /// Original sample count per channel.
    pub n_samples: usize,
    /// DAC sampling rate in GS/s.
    pub sample_rate_gs: f64,
    /// Compressed I channel.
    pub i: ChannelData,
    /// Compressed Q channel.
    pub q: ChannelData,
}

impl CompressedWaveform {
    /// An empty placeholder stream, intended as the reusable output slot
    /// of [`Compressor::compress_into`] (which overwrites every field).
    /// The placeholder itself is not a valid stream — decompressing it is
    /// meaningless until a compressor has filled it.
    pub fn empty() -> Self {
        CompressedWaveform {
            name: String::new(),
            variant: Variant::Delta,
            n_samples: 0,
            sample_rate_gs: 0.0,
            i: ChannelData::Raw(Vec::new()),
            q: ChannelData::Raw(Vec::new()),
        }
    }

    /// Compression ratio `R = old size / new size` (Figure 7's metric).
    /// Saturating, so hostile sample-count claims cannot overflow it.
    pub fn ratio(&self) -> CompressionRatio {
        let old = self.n_samples.saturating_mul(SAMPLE_BYTES);
        let new = (self.i.size_bits().saturating_add(self.q.size_bits())).div_ceil(8);
        CompressionRatio::new(old, new.max(1))
    }

    /// Total stored 16-bit words across both channels.
    pub fn words(&self) -> usize {
        self.i.words() + self.q.words()
    }

    /// The worst-case number of stored words in any window (both
    /// channels) — what sizes the uniform-width compressed memory
    /// (Section V-A) and the Figure 11 histogram.
    pub fn worst_case_window_words(&self) -> usize {
        self.i
            .window_word_counts()
            .into_iter()
            .chain(self.q.window_word_counts())
            .max()
            .unwrap_or(0)
    }

    /// Decompresses through the bit-exact hardware-engine model.
    ///
    /// # Errors
    ///
    /// Returns an error if a run-length stream is malformed (cannot happen
    /// for streams produced by [`Compressor::compress`]).
    pub fn decompress(&self) -> Result<Waveform, CompressError> {
        let (wf, _) =
            crate::engine::DecompressionEngine::for_variant(self.variant)?.decompress(self)?;
        Ok(wf)
    }
}

/// The compile-time compressor.
///
/// # Example
///
/// ```
/// use compaqt_core::compress::{Compressor, Variant};
/// use compaqt_pulse::shapes::{GaussianSquare, PulseShape};
///
/// // A 300 ns cross-resonance flat-top at 4.54 GS/s.
/// let cr = GaussianSquare::new(1362, 0.3, 40.0, 1000).to_waveform("CX(q0,q1)", 4.54);
/// let z = Compressor::new(Variant::IntDctW { ws: 16 }).compress(&cr)?;
/// assert!(z.ratio().ratio() > 5.0, "flat-tops compress well: {}", z.ratio());
/// # Ok::<(), compaqt_core::CompressError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Compressor {
    variant: Variant,
    threshold: f64,
    max_window_words: Option<usize>,
}

/// Default coefficient threshold (orthonormal domain). Chosen so the
/// reconstruction MSE lands in the paper's 1e-6..1e-5 band (Figure 7c)
/// while keeping 5x-class compression and a worst-case window of ~3
/// stored words (Figure 11).
pub const DEFAULT_THRESHOLD: f64 = 0.025;

impl Compressor {
    /// Creates a compressor with the default threshold.
    pub fn new(variant: Variant) -> Self {
        Compressor { variant, threshold: DEFAULT_THRESHOLD, max_window_words: None }
    }

    /// Sets the coefficient threshold (orthonormal-coefficient domain).
    pub fn with_threshold(mut self, threshold: f64) -> Self {
        self.threshold = threshold;
        self
    }

    /// Caps the stored words per window to `cap`, zeroing higher-order
    /// coefficients in windows that exceed it.
    ///
    /// This is the uniform input-buffer constraint of Section V-A: the
    /// banked memory and decompression pipeline are sized for a fixed
    /// worst case (3 words in the paper), "sacrificing compressibility to
    /// enable a significant performance boost". The extra distortion this
    /// introduces is part of the measured MSE.
    ///
    /// # Panics
    ///
    /// Panics if `cap < 2` (a window needs at least one coefficient and
    /// the run-length codeword).
    pub fn with_max_window_words(mut self, cap: usize) -> Self {
        assert!(cap >= 2, "window cap must allow a coefficient plus a codeword");
        self.max_window_words = Some(cap);
        self
    }

    /// The variant this compressor implements.
    pub fn variant(&self) -> Variant {
        self.variant
    }

    /// The active threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Compresses a waveform.
    ///
    /// Allocating wrapper over [`Compressor::compress_into`] (fresh
    /// scratch, fresh output), kept for convenience and as the baseline
    /// the `codec_throughput` bench measures the reuse path against.
    ///
    /// # Errors
    ///
    /// Returns [`CompressError::UnsupportedWindow`] for window sizes the
    /// integer transform does not support.
    pub fn compress(&self, wf: &Waveform) -> Result<CompressedWaveform, CompressError> {
        let mut scratch = EncodeScratch::new();
        let mut out = CompressedWaveform::empty();
        self.compress_into(wf, &mut scratch, &mut out)?;
        Ok(out)
    }

    /// Compresses a waveform into a caller-owned output stream, threading
    /// all working memory through `scratch` — the encode twin of
    /// [`crate::engine::DecompressionEngine::decompress_into`], bit-exact
    /// with [`Compressor::compress`].
    ///
    /// Every field of `out` is overwritten; its existing heap buffers
    /// (name, window word lists, delta/raw vectors) are reused in place.
    /// Once a scratch and an output slot have been warmed by one pass
    /// over a waveform, recompressing the same shape performs **zero
    /// heap allocations** (the `alloc_regression` integration test
    /// enforces this across a whole pulse library).
    ///
    /// # Errors
    ///
    /// Returns [`CompressError::UnsupportedWindow`] for window sizes the
    /// integer transform does not support.
    pub fn compress_into(
        &self,
        wf: &Waveform,
        scratch: &mut EncodeScratch,
        out: &mut CompressedWaveform,
    ) -> Result<(), CompressError> {
        self.compress_slices_into(wf.name(), wf.i(), wf.q(), wf.sample_rate_gs(), scratch, out)
    }

    /// Slice-level core of [`Compressor::compress_into`]: lets segment
    /// compressors (the adaptive encoder) compress sub-ranges without
    /// materializing intermediate [`Waveform`]s.
    pub(crate) fn compress_slices_into(
        &self,
        name: &str,
        i: &[f64],
        q: &[f64],
        sample_rate_gs: f64,
        scratch: &mut EncodeScratch,
        out: &mut CompressedWaveform,
    ) -> Result<(), CompressError> {
        self.variant.validate()?;
        debug_assert_eq!(i.len(), q.len(), "I and Q channels must have equal length");
        out.name.clear();
        out.name.push_str(name);
        out.variant = self.variant;
        out.n_samples = i.len();
        out.sample_rate_gs = sample_rate_gs;
        if self.variant == Variant::Delta {
            delta_channel_into(i, &mut scratch.qsamples, &mut out.i);
            delta_channel_into(q, &mut scratch.qsamples, &mut out.q);
            return Ok(());
        }
        // Transform variants: encode each channel to quantized coefficient
        // windows, then I/Q-equalize and run-length encode.
        let window = self.variant.window_size().unwrap_or(i.len());
        let mut i_coeffs = std::mem::take(&mut scratch.i_coeffs);
        let mut q_coeffs = std::mem::take(&mut scratch.q_coeffs);
        let result = self
            .encode_channel_into(i, scratch, &mut i_coeffs)
            .and_then(|()| self.encode_channel_into(q, scratch, &mut q_coeffs));
        if result.is_ok() {
            equalize_into(
                &i_coeffs,
                &q_coeffs,
                window,
                self.max_window_words,
                &mut out.i,
                &mut out.q,
                &mut scratch.spare_windows,
            );
        }
        scratch.i_coeffs = i_coeffs;
        scratch.q_coeffs = q_coeffs;
        result
    }

    /// Transforms, thresholds and quantizes one channel into flat
    /// `coeffs` — one window-sized chunk per transform window (a single
    /// full-length chunk for `DCT-N`). This is the per-channel front half
    /// of [`Compressor::compress_into`]; the back half
    /// (I/Q equalization + run-length encoding) needs both channels.
    ///
    /// `coeffs` is cleared and refilled; all staging and the cached
    /// transform plans live in `scratch`.
    ///
    /// # Errors
    ///
    /// Returns [`CompressError::UnsupportedWindow`] for window sizes the
    /// integer transform does not support.
    ///
    /// # Panics
    ///
    /// Panics for [`Variant::Delta`], which stores sample differences and
    /// has no coefficient windows (use [`Compressor::compress_into`]).
    pub fn encode_channel_into(
        &self,
        samples: &[f64],
        scratch: &mut EncodeScratch,
        coeffs: &mut Vec<i32>,
    ) -> Result<(), CompressError> {
        self.variant.validate()?;
        coeffs.clear();
        match self.variant {
            Variant::Delta => {
                panic!("Delta channels carry sample deltas, not coefficient windows")
            }
            Variant::DctN => float_full_into(samples, self.threshold, scratch, coeffs),
            Variant::DctW { ws } => {
                float_windows_into(samples, ws, self.threshold, scratch, coeffs)
            }
            Variant::IntDctW { ws } => {
                let thr = int_threshold(self.threshold, ws);
                int_windows_into(samples, ws, thr, scratch, coeffs)?;
            }
        }
        Ok(())
    }

    /// Fidelity-aware compression (Algorithm 1): halve the threshold until
    /// the reconstruction MSE meets `target_mse`, failing below the 1e-6
    /// threshold floor.
    ///
    /// Returns the compressed waveform and the threshold that met the
    /// target.
    ///
    /// # Errors
    ///
    /// Returns [`CompressError::TargetUnreachable`] if no threshold above
    /// the floor meets the target.
    pub fn compress_with_target(
        &self,
        wf: &Waveform,
        target_mse: f64,
    ) -> Result<(CompressedWaveform, f64), CompressError> {
        for threshold in ThresholdSchedule::new(self.threshold) {
            let candidate = self.with_threshold(threshold).compress(wf)?;
            let restored = candidate.decompress()?;
            if wf.mse(&restored) <= target_mse {
                return Ok((candidate, threshold));
            }
        }
        Err(CompressError::TargetUnreachable { target_mse })
    }
}

/// Reshapes a channel slot into `Windows` with exactly `n_windows` empty
/// word lists, reusing every inner `Vec`'s capacity. Word lists trimmed
/// when the slot shrinks are parked in `spare` (and pulled back when it
/// grows again), so a single output slot reused across waveforms of
/// different window counts keeps all its capacity. Growth beyond
/// everything previously seen allocates; steady-state reuse does not.
pub(crate) fn windows_buf<'a>(
    ch: &'a mut ChannelData,
    n_windows: usize,
    spare: &mut Vec<Vec<CodedWord>>,
) -> &'a mut Vec<Vec<CodedWord>> {
    if !matches!(ch, ChannelData::Windows(_)) {
        *ch = ChannelData::Windows(Vec::new());
    }
    let ChannelData::Windows(windows) = ch else { unreachable!("just normalized to Windows") };
    while windows.len() > n_windows {
        spare.push(windows.pop().expect("len checked"));
    }
    while windows.len() < n_windows {
        windows.push(spare.pop().unwrap_or_default());
    }
    for w in windows.iter_mut() {
        w.clear();
    }
    windows
}

/// Reshapes a channel slot into `Raw`, returning its cleared sample
/// buffer for refilling.
fn raw_buf(ch: &mut ChannelData) -> &mut Vec<i16> {
    if !matches!(ch, ChannelData::Raw(_)) {
        *ch = ChannelData::Raw(Vec::new());
    }
    let ChannelData::Raw(samples) = ch else { unreachable!("just normalized to Raw") };
    samples.clear();
    samples
}

/// Reshapes a channel slot into `Delta`, setting the header fields and
/// returning its cleared delta buffer for refilling.
fn delta_buf(ch: &mut ChannelData, base: i16, bits: u32) -> &mut Vec<i16> {
    if !matches!(ch, ChannelData::Delta { .. }) {
        *ch = ChannelData::Delta { base, bits, deltas: Vec::new() };
    }
    let ChannelData::Delta { base: b, bits: w, deltas } = ch else {
        unreachable!("just normalized to Delta")
    };
    *b = base;
    *w = bits;
    deltas.clear();
    deltas
}

/// Full-length (`DCT-N`) transform of one channel through the scratch's
/// keyed plan cache, appending one quantized full-length window to
/// `coeffs`.
fn float_full_into(
    samples: &[f64],
    threshold: f64,
    scratch: &mut EncodeScratch,
    out: &mut Vec<i32>,
) {
    let n = samples.len();
    let scale = f64::from(1u32 << float_coeff_scale_bits(n));
    scratch.fcoeffs.resize(n, 0.0);
    scratch.plans.plan(n).forward_into(samples, &mut scratch.fcoeffs);
    compaqt_dsp::threshold::apply_threshold(&mut scratch.fcoeffs, threshold);
    out.extend(
        scratch.fcoeffs.iter().map(|&c| ((c * scale).round() as i32).clamp(MIN_COEFF, MAX_COEFF)),
    );
}

/// Windowed float transform of one channel, appending one quantized
/// `ws`-chunk per window to `coeffs`. The tail window is zero-padded,
/// matching [`compaqt_dsp::window::split`] with [`PadMode::Zero`].
///
/// All windows of the channel are staged flat and transformed by one
/// call to the SoA-batched forward kernel
/// ([`compaqt_dsp::batched::BatchedDct`]) — bit-identical to the
/// per-window [`compaqt_dsp::dct::Dct::forward_into`] it replaced.
/// Thresholding and quantization are elementwise, so they run over the
/// flat coefficient buffer unchanged.
///
/// [`PadMode::Zero`]: compaqt_dsp::window::PadMode::Zero
fn float_windows_into(
    samples: &[f64],
    ws: usize,
    threshold: f64,
    scratch: &mut EncodeScratch,
    out: &mut Vec<i32>,
) {
    let scale = f64::from(1u32 << float_coeff_scale_bits(ws));
    let padded = samples.len().div_ceil(ws) * ws;
    // Take the staging buffers so the cached batched plan can stay
    // borrowed across the transform (one lookup per channel).
    let mut f_stage = std::mem::take(&mut scratch.f_stage);
    let mut fcoeffs = std::mem::take(&mut scratch.fcoeffs);
    f_stage.clear();
    f_stage.resize(padded, 0.0);
    f_stage[..samples.len()].copy_from_slice(samples);
    fcoeffs.resize(padded, 0.0);
    scratch.batched_dct(ws).forward_batched_into(&f_stage, &mut fcoeffs[..padded]);
    compaqt_dsp::threshold::apply_threshold(&mut fcoeffs[..padded], threshold);
    out.extend(
        fcoeffs[..padded].iter().map(|&c| ((c * scale).round() as i32).clamp(MIN_COEFF, MAX_COEFF)),
    );
    scratch.f_stage = f_stage;
    scratch.fcoeffs = fcoeffs;
}

/// Windowed integer transform of one channel, appending one quantized
/// `ws`-chunk per window to `coeffs`.
///
/// Like [`float_windows_into`], the whole channel is staged as flat
/// Q1.15 windows and transformed by one SoA-batched forward call
/// ([`compaqt_dsp::batched::BatchedIntDctPlan`]), bit-identical to the
/// per-window [`compaqt_dsp::intdct::IntDct::forward_into`].
fn int_windows_into(
    samples: &[f64],
    ws: usize,
    thr: i32,
    scratch: &mut EncodeScratch,
    out: &mut Vec<i32>,
) -> Result<(), CompressError> {
    let padded = samples.len().div_ceil(ws) * ws;
    // Take the staging buffer so the cached batched plan can stay
    // borrowed across the transform (one lookup per channel).
    let mut q_stage = std::mem::take(&mut scratch.q_stage);
    q_stage.clear();
    q_stage.resize(padded, Q15::ZERO);
    for (q, &v) in q_stage.iter_mut().zip(samples) {
        *q = Q15::from_f64(v);
    }
    let start = out.len();
    let result = scratch.batched_int_plan(ws).map(|plan| {
        out.resize(start + padded, 0);
        plan.forward_batched_into(&q_stage, &mut out[start..]);
    });
    scratch.q_stage = q_stage;
    result?;
    compaqt_dsp::threshold::apply_threshold_int(&mut out[start..], thr);
    // Quantize to the 15-bit storage word (tag bit + DC headroom).
    for c in &mut out[start..] {
        *c = int_store_quantize(*c).clamp(MIN_COEFF, MAX_COEFF);
    }
    Ok(())
}

/// Applies the paper's I/Q equalization: both channels keep the same
/// number of stored words per window, then run-length encodes. A window
/// cap (the uniform-width constraint) zeroes coefficients past the cap.
/// Inputs are flat quantized coefficients, one `ws`-chunk per window;
/// output word lists are rebuilt in place (capacities reused).
fn equalize_into(
    ci: &[i32],
    cq: &[i32],
    ws: usize,
    cap: Option<usize>,
    i_ch: &mut ChannelData,
    q_ch: &mut ChannelData,
    spare: &mut Vec<Vec<CodedWord>>,
) {
    fn encode(coeffs: &[i32], keep: usize, ws: usize, words: &mut Vec<CodedWord>) {
        words.extend(coeffs[..keep].iter().map(|&c| CodedWord::Coeff(CodedWord::clamp_coeff(c))));
        let mut remaining = ws - keep;
        while remaining > 0 {
            let run = remaining.min(compaqt_dsp::rle::MAX_RUN as usize);
            words.push(CodedWord::Rle(RleCodeword { run: run as u16, repeat_previous: false }));
            remaining -= run;
        }
    }
    debug_assert_eq!(ci.len(), cq.len(), "channels must have equal window counts");
    let n_windows = ci.len() / ws;
    let i_out = windows_buf(i_ch, n_windows, spare);
    let q_out = windows_buf(q_ch, n_windows, spare);
    let windows = ci.chunks_exact(ws).zip(cq.chunks_exact(ws));
    for ((wi, wq), (iw, qw)) in windows.zip(i_out.iter_mut().zip(q_out.iter_mut())) {
        let keep_i = ws - compaqt_dsp::threshold::trailing_zeros(wi);
        let keep_q = ws - compaqt_dsp::threshold::trailing_zeros(wq);
        let mut keep = keep_i.max(keep_q);
        if let Some(cap) = cap {
            // Reserve one slot for the codeword unless the window fills.
            let max_keep = if cap >= ws { ws } else { cap - 1 };
            keep = keep.min(max_keep);
        }
        encode(wi, keep, ws, iw);
        encode(wq, keep, ws, qw);
    }
}

/// Delta-compresses one channel, or falls back to raw storage when the
/// channel has zero crossings (Section IV-B's limitation: sign changes
/// force full-width difference fields). Deltas are stored at the minimal
/// uniform bit width that holds the largest step. Q1.15 staging runs
/// through `qsamples`; the output slot's buffers are reused in place.
fn delta_channel_into(samples: &[f64], qsamples: &mut Vec<i16>, out: &mut ChannelData) {
    qsamples.clear();
    qsamples.extend(samples.iter().map(|&v| Q15::from_f64(v).raw()));
    let q = &qsamples[..];
    // Zero crossing: consecutive samples with strictly opposite signs.
    let crossing = q.windows(2).any(|w| (w[0] > 0 && w[1] < 0) || (w[0] < 0 && w[1] > 0));
    let mut max_abs: i32 = 0;
    if !crossing {
        for w in q.windows(2) {
            max_abs = max_abs.max((i32::from(w[1]) - i32::from(w[0])).abs());
        }
    }
    if crossing || max_abs > i32::from(i16::MAX) / 2 {
        // Deltas as wide as the samples: nothing gained; store raw.
        raw_buf(out).extend_from_slice(q);
        return;
    }
    // Signed width for the largest delta, at least 4 bits.
    let bits = (33 - (max_abs.max(1) as u32).leading_zeros()).max(4);
    let deltas = delta_buf(out, q[0], bits);
    deltas.extend(q.windows(2).map(|w| (i32::from(w[1]) - i32::from(w[0])) as i16));
}

#[cfg(test)]
mod tests {
    use super::*;
    use compaqt_pulse::shapes::{Drag, Gaussian, GaussianSquare, PulseShape};

    fn x_pulse() -> Waveform {
        Drag::new(136, 0.5, 34.0, 0.2).to_waveform("X(q0)", 4.54)
    }

    fn cr_pulse() -> Waveform {
        GaussianSquare::new(1362, 0.3, 40.0, 1020).to_waveform("CX(q0,q1)", 4.54)
    }

    #[test]
    fn int_dct_round_trip_is_accurate() {
        for ws in [8, 16] {
            let wf = x_pulse();
            let z = Compressor::new(Variant::IntDctW { ws }).compress(&wf).unwrap();
            let back = z.decompress().unwrap();
            let mse = wf.mse(&back);
            assert!(mse < 1e-4, "ws={ws}: mse={mse:e}");
        }
    }

    #[test]
    fn all_variants_round_trip_below_threshold_bound() {
        let wf = x_pulse();
        for variant in [
            Variant::DctN,
            Variant::DctW { ws: 8 },
            Variant::DctW { ws: 16 },
            Variant::IntDctW { ws: 8 },
            Variant::IntDctW { ws: 16 },
        ] {
            let z = Compressor::new(variant).compress(&wf).unwrap();
            let back = z.decompress().unwrap();
            let mse = wf.mse(&back);
            // Zeroed coefficients are each below the threshold, so MSE is
            // bounded by threshold^2 (plus integer rounding).
            assert!(
                mse < DEFAULT_THRESHOLD * DEFAULT_THRESHOLD + 1e-6,
                "{}: mse={mse:e}",
                variant.label()
            );
        }
    }

    #[test]
    fn delta_round_trips_exactly() {
        let wf = Gaussian::new(136, 0.5, 34.0).to_waveform("G", 4.54);
        let z = Compressor::new(Variant::Delta).compress(&wf).unwrap();
        let back = z.decompress().unwrap();
        // Delta is lossless up to Q1.15 quantization.
        assert!(wf.mse(&back) < 1e-9);
    }

    #[test]
    fn delta_compresses_monotone_channel_about_2x() {
        let wf = Gaussian::new(136, 0.5, 34.0).to_waveform("G", 4.54);
        let z = Compressor::new(Variant::Delta).compress(&wf).unwrap();
        let r = z.ratio().ratio();
        assert!((1.5..2.5).contains(&r), "got {r}");
    }

    #[test]
    fn delta_does_not_compress_zero_crossing_channel() {
        // DRAG Q channel crosses zero -> raw fallback for that channel.
        let wf = x_pulse();
        let z = Compressor::new(Variant::Delta).compress(&wf).unwrap();
        assert!(matches!(z.q, ChannelData::Raw(_)));
        assert!(matches!(z.i, ChannelData::Delta { .. }));
    }

    #[test]
    fn smooth_pulse_compresses_over_4x_with_ws16() {
        let wf = x_pulse();
        let z = Compressor::new(Variant::IntDctW { ws: 16 }).compress(&wf).unwrap();
        let r = z.ratio().ratio();
        assert!(r > 4.0, "got {r}");
    }

    #[test]
    fn flat_top_compresses_better_than_short_gaussian() {
        let c = Compressor::new(Variant::IntDctW { ws: 16 });
        let r_x = c.compress(&x_pulse()).unwrap().ratio().ratio();
        let r_cr = c.compress(&cr_pulse()).unwrap().ratio().ratio();
        assert!(r_cr > r_x, "CR {r_cr} vs X {r_x}");
    }

    #[test]
    fn dct_n_compresses_flat_top_most() {
        // Figure 7a: DCT-N achieves the highest per-waveform ratios on
        // long waveforms (one giant window, one RLE codeword).
        let wf = cr_pulse();
        let rn = Compressor::new(Variant::DctN).compress(&wf).unwrap().ratio().ratio();
        let rw = Compressor::new(Variant::DctW { ws: 16 }).compress(&wf).unwrap().ratio().ratio();
        assert!(rn > rw, "DCT-N {rn} vs DCT-W {rw}");
        assert!(rn > 20.0, "DCT-N on a flat-top should be dramatic: {rn}");
    }

    #[test]
    fn larger_windows_compress_better() {
        // Figure 7b: WS=8 has the least reduction because RLE is limited
        // to 8 samples at a time.
        let wf = cr_pulse();
        let r8 = Compressor::new(Variant::IntDctW { ws: 8 }).compress(&wf).unwrap().ratio().ratio();
        let r16 =
            Compressor::new(Variant::IntDctW { ws: 16 }).compress(&wf).unwrap().ratio().ratio();
        assert!(r16 > r8, "WS16 {r16} vs WS8 {r8}");
        assert!(r8 <= 8.0 + 0.1, "WS=8 ratio is bounded near 8x by the window");
    }

    #[test]
    fn channels_have_equal_words_per_window() {
        let wf = x_pulse();
        let z = Compressor::new(Variant::IntDctW { ws: 16 }).compress(&wf).unwrap();
        assert_eq!(z.i.window_word_counts(), z.q.window_word_counts());
    }

    #[test]
    fn worst_case_window_is_small_for_smooth_pulses() {
        // Figure 11: <= 3 words per window for int-DCT-W on real pulses.
        let z = Compressor::new(Variant::IntDctW { ws: 16 }).compress(&cr_pulse()).unwrap();
        assert!(z.worst_case_window_words() <= 5, "got {}", z.worst_case_window_words());
    }

    #[test]
    fn unsupported_window_is_rejected() {
        let err = Compressor::new(Variant::IntDctW { ws: 12 }).compress(&x_pulse()).unwrap_err();
        assert_eq!(err, CompressError::UnsupportedWindow(12));
        let err = Compressor::new(Variant::DctW { ws: 7 }).compress(&x_pulse()).unwrap_err();
        assert_eq!(err, CompressError::UnsupportedWindow(7));
    }

    #[test]
    fn lower_threshold_means_lower_mse_and_ratio() {
        let wf = x_pulse();
        let hi = Compressor::new(Variant::IntDctW { ws: 16 }).with_threshold(0.02);
        let lo = Compressor::new(Variant::IntDctW { ws: 16 }).with_threshold(0.0005);
        let z_hi = hi.compress(&wf).unwrap();
        let z_lo = lo.compress(&wf).unwrap();
        let mse_hi = wf.mse(&z_hi.decompress().unwrap());
        let mse_lo = wf.mse(&z_lo.decompress().unwrap());
        assert!(mse_lo <= mse_hi, "mse {mse_lo:e} vs {mse_hi:e}");
        assert!(z_lo.ratio().ratio() <= z_hi.ratio().ratio());
    }

    #[test]
    fn fidelity_aware_meets_target() {
        let wf = x_pulse();
        let c = Compressor::new(Variant::IntDctW { ws: 16 }).with_threshold(0.05);
        let target = 1e-6;
        let (z, used) = c.compress_with_target(&wf, target).unwrap();
        let mse = wf.mse(&z.decompress().unwrap());
        assert!(mse <= target, "mse {mse:e}");
        assert!(used <= 0.05);
    }

    #[test]
    fn fidelity_aware_fails_for_impossible_target() {
        let wf = x_pulse();
        let c = Compressor::new(Variant::IntDctW { ws: 8 });
        // int-DCT rounding alone exceeds this target.
        let err = c.compress_with_target(&wf, 1e-18).unwrap_err();
        assert!(matches!(err, CompressError::TargetUnreachable { .. }));
    }

    #[test]
    fn ratio_accounts_packed_iq_samples() {
        let wf = x_pulse();
        let z = Compressor::new(Variant::IntDctW { ws: 16 }).compress(&wf).unwrap();
        assert_eq!(z.ratio().old_size(), 136 * 4);
    }

    #[test]
    fn window_cap_bounds_worst_case() {
        let wf = x_pulse();
        let uncapped = Compressor::new(Variant::IntDctW { ws: 16 })
            .with_threshold(0.001)
            .compress(&wf)
            .unwrap();
        assert!(uncapped.worst_case_window_words() > 3);
        let capped = Compressor::new(Variant::IntDctW { ws: 16 })
            .with_threshold(0.001)
            .with_max_window_words(3)
            .compress(&wf)
            .unwrap();
        assert!(capped.worst_case_window_words() <= 3);
        // The cap is lossy but bounded: reconstruction still works.
        let mse = wf.mse(&capped.decompress().unwrap());
        assert!(mse < 1e-3, "mse {mse:e}");
    }

    #[test]
    fn window_cap_of_full_window_changes_nothing() {
        let wf = x_pulse();
        let a = Compressor::new(Variant::IntDctW { ws: 16 }).compress(&wf).unwrap();
        let b = Compressor::new(Variant::IntDctW { ws: 16 })
            .with_max_window_words(16)
            .compress(&wf)
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "codeword")]
    fn window_cap_below_two_rejected() {
        Compressor::new(Variant::IntDctW { ws: 16 }).with_max_window_words(1);
    }

    #[test]
    fn variant_labels_match_paper() {
        assert_eq!(Variant::IntDctW { ws: 16 }.label(), "int-DCT-W (WS=16)");
        assert_eq!(Variant::DctN.label(), "DCT-N");
    }
}
