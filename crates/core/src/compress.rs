//! The COMPAQT compiler module: compile-time waveform compression.
//!
//! Four variants are implemented, matching Table II plus the delta
//! baseline of Section IV-B:
//!
//! | variant | transform | hardware complexity |
//! |---|---|---|
//! | `Delta` | sample differences | trivial, but poor on zero crossings |
//! | `DCT-N` | one DCT over the whole waveform | high (N varies, N can be 1000+) |
//! | `DCT-W` | windowed float DCT (WS=8/16) | moderate (11/26 multipliers) |
//! | `int-DCT-W` | windowed HEVC integer DCT | low (shift-add only) |
//!
//! The pipeline per channel is: transform each window -> zero coefficients
//! below a threshold -> run-length encode the trailing zeros (Figure 8).
//! Per the paper, I and Q keep the same number of stored words per window
//! so the hardware decoder stays simple.

use crate::CompressError;
use compaqt_dsp::dct::Dct;
use compaqt_dsp::fixed::Q15;
use compaqt_dsp::intdct::IntDct;
use compaqt_dsp::metrics::CompressionRatio;
use compaqt_dsp::rle::{CodedWord, RleCodeword, MAX_COEFF, MIN_COEFF};
use compaqt_dsp::threshold::ThresholdSchedule;
use compaqt_pulse::waveform::Waveform;
use serde::{Deserialize, Serialize};

/// Bytes per stored word (all streams use 16-bit words).
pub const WORD_BYTES: usize = 2;

/// Bytes per uncompressed packed I+Q sample (two 16-bit channels).
pub const SAMPLE_BYTES: usize = 4;

/// A compression variant (Table II plus the delta baseline).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Variant {
    /// Base-delta compression of raw samples.
    Delta,
    /// Full-length DCT (window = entire waveform).
    DctN,
    /// Windowed floating-point DCT.
    DctW {
        /// Window size (4, 8, 16 or 32).
        ws: usize,
    },
    /// Windowed HEVC-style integer DCT (the COMPAQT design point).
    IntDctW {
        /// Window size (4, 8, 16 or 32).
        ws: usize,
    },
}

impl Variant {
    /// Short display name matching the paper's figures.
    pub fn label(&self) -> String {
        match self {
            Variant::Delta => "Delta".to_string(),
            Variant::DctN => "DCT-N".to_string(),
            Variant::DctW { ws } => format!("DCT-W (WS={ws})"),
            Variant::IntDctW { ws } => format!("int-DCT-W (WS={ws})"),
        }
    }

    /// The transform window size, if the variant is windowed.
    pub fn window_size(&self) -> Option<usize> {
        match self {
            Variant::DctW { ws } | Variant::IntDctW { ws } => Some(*ws),
            _ => None,
        }
    }

    fn validate(&self) -> Result<(), CompressError> {
        if let Some(ws) = self.window_size() {
            if !compaqt_dsp::intdct::SUPPORTED_SIZES.contains(&ws) {
                return Err(CompressError::UnsupportedWindow(ws));
            }
        }
        Ok(())
    }
}

/// Fixed-point scale (in bits) used to store *float* DCT coefficients in
/// 15-bit words: the largest scale such that the worst-case coefficient
/// magnitude `sqrt(n)` (a full-scale DC window) still fits.
pub(crate) fn float_coeff_scale_bits(n: usize) -> u32 {
    ((f64::from(MAX_COEFF) / (n as f64).sqrt()).log2().floor() as u32).min(14)
}

/// Extra right-shift applied to integer-DCT coefficients before storage so
/// a full-scale DC window fits the 15-bit word (the tag bit of the RLE
/// format costs one bit, the DC headroom another).
pub(crate) const INT_STORE_SHIFT: u32 = 2;

/// Rounding right-shift by [`INT_STORE_SHIFT`].
pub(crate) fn int_store_quantize(c: i32) -> i32 {
    (c + (1 << (INT_STORE_SHIFT - 1))) >> INT_STORE_SHIFT
}

/// Integer threshold equivalent to an orthonormal-domain `threshold` for
/// the int-DCT's native coefficient scale `2^(15 - log2(ws)/2)`.
pub(crate) fn int_threshold(threshold: f64, ws: usize) -> i32 {
    let scale = 2f64.powf(15.0 - (ws as f64).log2() / 2.0);
    (threshold * scale).round().max(1.0) as i32
}

/// One compressed channel (I or Q).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ChannelData {
    /// Windowed coded streams: one word list per transform window.
    Windows(Vec<Vec<CodedWord>>),
    /// Base + reduced-width deltas.
    Delta {
        /// First sample at full width.
        base: i16,
        /// Bit width of each stored delta (including sign).
        bits: u32,
        /// Deltas between consecutive samples, each within `bits` bits.
        deltas: Vec<i16>,
    },
    /// Uncompressed Q1.15 samples (delta fallback for zero-crossing
    /// waveforms).
    Raw(Vec<i16>),
}

impl ChannelData {
    /// Storage footprint in bits.
    pub fn size_bits(&self) -> usize {
        match self {
            ChannelData::Windows(windows) => windows.iter().map(|w| w.len() * 16).sum(),
            ChannelData::Delta { bits, deltas, .. } => 16 + 8 + deltas.len() * *bits as usize,
            ChannelData::Raw(samples) => samples.len() * 16,
        }
    }

    /// Number of 16-bit memory words occupied (delta bytes round up).
    pub fn words(&self) -> usize {
        self.size_bits().div_ceil(16)
    }

    /// Word counts per window (empty for non-windowed channels).
    pub fn window_word_counts(&self) -> Vec<usize> {
        match self {
            ChannelData::Windows(windows) => windows.iter().map(Vec::len).collect(),
            _ => Vec::new(),
        }
    }
}

/// A compressed waveform: both channels plus enough metadata to
/// reconstruct and to account storage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompressedWaveform {
    /// Waveform name (copied from the source).
    pub name: String,
    /// The variant that produced this stream.
    pub variant: Variant,
    /// Original sample count per channel.
    pub n_samples: usize,
    /// DAC sampling rate in GS/s.
    pub sample_rate_gs: f64,
    /// Compressed I channel.
    pub i: ChannelData,
    /// Compressed Q channel.
    pub q: ChannelData,
}

impl CompressedWaveform {
    /// Compression ratio `R = old size / new size` (Figure 7's metric).
    pub fn ratio(&self) -> CompressionRatio {
        let old = self.n_samples * SAMPLE_BYTES;
        let new = (self.i.size_bits() + self.q.size_bits()).div_ceil(8);
        CompressionRatio::new(old, new.max(1))
    }

    /// Total stored 16-bit words across both channels.
    pub fn words(&self) -> usize {
        self.i.words() + self.q.words()
    }

    /// The worst-case number of stored words in any window (both
    /// channels) — what sizes the uniform-width compressed memory
    /// (Section V-A) and the Figure 11 histogram.
    pub fn worst_case_window_words(&self) -> usize {
        self.i
            .window_word_counts()
            .into_iter()
            .chain(self.q.window_word_counts())
            .max()
            .unwrap_or(0)
    }

    /// Decompresses through the bit-exact hardware-engine model.
    ///
    /// # Errors
    ///
    /// Returns an error if a run-length stream is malformed (cannot happen
    /// for streams produced by [`Compressor::compress`]).
    pub fn decompress(&self) -> Result<Waveform, CompressError> {
        let (wf, _) =
            crate::engine::DecompressionEngine::for_variant(self.variant)?.decompress(self)?;
        Ok(wf)
    }
}

/// The compile-time compressor.
///
/// # Example
///
/// ```
/// use compaqt_core::compress::{Compressor, Variant};
/// use compaqt_pulse::shapes::{GaussianSquare, PulseShape};
///
/// // A 300 ns cross-resonance flat-top at 4.54 GS/s.
/// let cr = GaussianSquare::new(1362, 0.3, 40.0, 1000).to_waveform("CX(q0,q1)", 4.54);
/// let z = Compressor::new(Variant::IntDctW { ws: 16 }).compress(&cr)?;
/// assert!(z.ratio().ratio() > 5.0, "flat-tops compress well: {}", z.ratio());
/// # Ok::<(), compaqt_core::CompressError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Compressor {
    variant: Variant,
    threshold: f64,
    max_window_words: Option<usize>,
}

/// Default coefficient threshold (orthonormal domain). Chosen so the
/// reconstruction MSE lands in the paper's 1e-6..1e-5 band (Figure 7c)
/// while keeping 5x-class compression and a worst-case window of ~3
/// stored words (Figure 11).
pub const DEFAULT_THRESHOLD: f64 = 0.025;

impl Compressor {
    /// Creates a compressor with the default threshold.
    pub fn new(variant: Variant) -> Self {
        Compressor { variant, threshold: DEFAULT_THRESHOLD, max_window_words: None }
    }

    /// Sets the coefficient threshold (orthonormal-coefficient domain).
    pub fn with_threshold(mut self, threshold: f64) -> Self {
        self.threshold = threshold;
        self
    }

    /// Caps the stored words per window to `cap`, zeroing higher-order
    /// coefficients in windows that exceed it.
    ///
    /// This is the uniform input-buffer constraint of Section V-A: the
    /// banked memory and decompression pipeline are sized for a fixed
    /// worst case (3 words in the paper), "sacrificing compressibility to
    /// enable a significant performance boost". The extra distortion this
    /// introduces is part of the measured MSE.
    ///
    /// # Panics
    ///
    /// Panics if `cap < 2` (a window needs at least one coefficient and
    /// the run-length codeword).
    pub fn with_max_window_words(mut self, cap: usize) -> Self {
        assert!(cap >= 2, "window cap must allow a coefficient plus a codeword");
        self.max_window_words = Some(cap);
        self
    }

    /// The variant this compressor implements.
    pub fn variant(&self) -> Variant {
        self.variant
    }

    /// The active threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Compresses a waveform.
    ///
    /// # Errors
    ///
    /// Returns [`CompressError::UnsupportedWindow`] for window sizes the
    /// integer transform does not support.
    pub fn compress(&self, wf: &Waveform) -> Result<CompressedWaveform, CompressError> {
        self.variant.validate()?;
        let (i, q) = match self.variant {
            Variant::Delta => (delta_channel(wf.i()), delta_channel(wf.q())),
            Variant::DctN => {
                let n = wf.len();
                let ci = float_full(wf.i(), self.threshold);
                let cq = float_full(wf.q(), self.threshold);
                equalize(ci, cq, n, self.max_window_words)
            }
            Variant::DctW { ws } => {
                let dct = Dct::new(ws);
                let ci = float_windows(&dct, wf.i(), ws, self.threshold);
                let cq = float_windows(&dct, wf.q(), ws, self.threshold);
                equalize(ci, cq, ws, self.max_window_words)
            }
            Variant::IntDctW { ws } => {
                let t = IntDct::new(ws).map_err(|e| CompressError::UnsupportedWindow(e.size))?;
                let thr = int_threshold(self.threshold, ws);
                let ci = int_windows(&t, wf.i(), thr);
                let cq = int_windows(&t, wf.q(), thr);
                equalize(ci, cq, ws, self.max_window_words)
            }
        };
        Ok(CompressedWaveform {
            name: wf.name().to_string(),
            variant: self.variant,
            n_samples: wf.len(),
            sample_rate_gs: wf.sample_rate_gs(),
            i,
            q,
        })
    }

    /// Fidelity-aware compression (Algorithm 1): halve the threshold until
    /// the reconstruction MSE meets `target_mse`, failing below the 1e-6
    /// threshold floor.
    ///
    /// Returns the compressed waveform and the threshold that met the
    /// target.
    ///
    /// # Errors
    ///
    /// Returns [`CompressError::TargetUnreachable`] if no threshold above
    /// the floor meets the target.
    pub fn compress_with_target(
        &self,
        wf: &Waveform,
        target_mse: f64,
    ) -> Result<(CompressedWaveform, f64), CompressError> {
        for threshold in ThresholdSchedule::new(self.threshold) {
            let candidate = self.with_threshold(threshold).compress(wf)?;
            let restored = candidate.decompress()?;
            if wf.mse(&restored) <= target_mse {
                return Ok((candidate, threshold));
            }
        }
        Err(CompressError::TargetUnreachable { target_mse })
    }
}

/// Thresholded coefficient windows for one channel, pre-RLE.
struct CoeffWindows {
    /// Quantized integer coefficients per window.
    windows: Vec<Vec<i32>>,
}

/// Full-length (`DCT-N`) transform of one channel via the O(N log N)
/// recursive DCT.
fn float_full(samples: &[f64], threshold: f64) -> CoeffWindows {
    let scale = f64::from(1u32 << float_coeff_scale_bits(samples.len()));
    let mut coeffs = compaqt_dsp::fastdct::fast_dct2(samples);
    compaqt_dsp::threshold::apply_threshold(&mut coeffs, threshold);
    let window =
        coeffs.iter().map(|&c| ((c * scale).round() as i32).clamp(MIN_COEFF, MAX_COEFF)).collect();
    CoeffWindows { windows: vec![window] }
}

fn float_windows(dct: &Dct, samples: &[f64], ws: usize, threshold: f64) -> CoeffWindows {
    let (wins, _) = compaqt_dsp::window::split(samples, ws, compaqt_dsp::window::PadMode::Zero);
    let scale = f64::from(1u32 << float_coeff_scale_bits(ws));
    let windows = wins
        .iter()
        .map(|w| {
            let mut coeffs = dct.forward(w);
            compaqt_dsp::threshold::apply_threshold(&mut coeffs, threshold);
            coeffs
                .iter()
                .map(|&c| ((c * scale).round() as i32).clamp(MIN_COEFF, MAX_COEFF))
                .collect()
        })
        .collect();
    CoeffWindows { windows }
}

fn int_windows(t: &IntDct, samples: &[f64], thr: i32) -> CoeffWindows {
    let ws = t.len();
    let (wins, _) = compaqt_dsp::window::split(samples, ws, compaqt_dsp::window::PadMode::Zero);
    let windows = wins
        .iter()
        .map(|w| {
            let q: Vec<Q15> = w.iter().map(|&v| Q15::from_f64(v)).collect();
            let mut coeffs = t.forward(&q);
            compaqt_dsp::threshold::apply_threshold_int(&mut coeffs, thr);
            // Quantize to the 15-bit storage word (tag bit + DC headroom).
            for c in coeffs.iter_mut() {
                *c = int_store_quantize(*c).clamp(MIN_COEFF, MAX_COEFF);
            }
            coeffs
        })
        .collect();
    CoeffWindows { windows }
}

/// Applies the paper's I/Q equalization: both channels keep the same
/// number of stored words per window, then run-length encodes. A window
/// cap (the uniform-width constraint) zeroes coefficients past the cap.
fn equalize(
    ci: CoeffWindows,
    cq: CoeffWindows,
    ws: usize,
    cap: Option<usize>,
) -> (ChannelData, ChannelData) {
    let encode = |coeffs: &[i32], keep: usize| -> Vec<CodedWord> {
        let mut words: Vec<CodedWord> =
            coeffs[..keep].iter().map(|&c| CodedWord::Coeff(CodedWord::clamp_coeff(c))).collect();
        let zeros = ws - keep;
        if zeros > 0 {
            let mut remaining = zeros;
            while remaining > 0 {
                let run = remaining.min(compaqt_dsp::rle::MAX_RUN as usize);
                words.push(CodedWord::Rle(RleCodeword { run: run as u16, repeat_previous: false }));
                remaining -= run;
            }
        }
        words
    };
    let mut i_out = Vec::with_capacity(ci.windows.len());
    let mut q_out = Vec::with_capacity(cq.windows.len());
    for (wi, wq) in ci.windows.iter().zip(&cq.windows) {
        let keep_i = wi.len() - compaqt_dsp::threshold::trailing_zeros(wi);
        let keep_q = wq.len() - compaqt_dsp::threshold::trailing_zeros(wq);
        let mut keep = keep_i.max(keep_q);
        if let Some(cap) = cap {
            // Reserve one slot for the codeword unless the window fills.
            let max_keep = if cap >= ws { ws } else { cap - 1 };
            keep = keep.min(max_keep);
        }
        i_out.push(encode(wi, keep));
        q_out.push(encode(wq, keep));
    }
    (ChannelData::Windows(i_out), ChannelData::Windows(q_out))
}

/// Delta-compresses one channel, or falls back to raw storage when the
/// channel has zero crossings (Section IV-B's limitation: sign changes
/// force full-width difference fields). Deltas are stored at the minimal
/// uniform bit width that holds the largest step.
fn delta_channel(samples: &[f64]) -> ChannelData {
    let q: Vec<i16> = samples.iter().map(|&v| Q15::from_f64(v).raw()).collect();
    // Zero crossing: consecutive samples with strictly opposite signs.
    let crossing = q.windows(2).any(|w| (w[0] > 0 && w[1] < 0) || (w[0] < 0 && w[1] > 0));
    if crossing {
        return ChannelData::Raw(q);
    }
    let mut deltas = Vec::with_capacity(q.len().saturating_sub(1));
    let mut max_abs: i32 = 0;
    for w in q.windows(2) {
        let d = i32::from(w[1]) - i32::from(w[0]);
        max_abs = max_abs.max(d.abs());
        deltas.push(d as i16);
    }
    if max_abs > i32::from(i16::MAX) / 2 {
        // Deltas as wide as the samples: nothing gained.
        return ChannelData::Raw(q);
    }
    // Signed width for the largest delta, at least 4 bits.
    let bits = (33 - (max_abs.max(1) as u32).leading_zeros()).max(4);
    ChannelData::Delta { base: q[0], bits, deltas }
}

#[cfg(test)]
mod tests {
    use super::*;
    use compaqt_pulse::shapes::{Drag, Gaussian, GaussianSquare, PulseShape};

    fn x_pulse() -> Waveform {
        Drag::new(136, 0.5, 34.0, 0.2).to_waveform("X(q0)", 4.54)
    }

    fn cr_pulse() -> Waveform {
        GaussianSquare::new(1362, 0.3, 40.0, 1020).to_waveform("CX(q0,q1)", 4.54)
    }

    #[test]
    fn int_dct_round_trip_is_accurate() {
        for ws in [8, 16] {
            let wf = x_pulse();
            let z = Compressor::new(Variant::IntDctW { ws }).compress(&wf).unwrap();
            let back = z.decompress().unwrap();
            let mse = wf.mse(&back);
            assert!(mse < 1e-4, "ws={ws}: mse={mse:e}");
        }
    }

    #[test]
    fn all_variants_round_trip_below_threshold_bound() {
        let wf = x_pulse();
        for variant in [
            Variant::DctN,
            Variant::DctW { ws: 8 },
            Variant::DctW { ws: 16 },
            Variant::IntDctW { ws: 8 },
            Variant::IntDctW { ws: 16 },
        ] {
            let z = Compressor::new(variant).compress(&wf).unwrap();
            let back = z.decompress().unwrap();
            let mse = wf.mse(&back);
            // Zeroed coefficients are each below the threshold, so MSE is
            // bounded by threshold^2 (plus integer rounding).
            assert!(
                mse < DEFAULT_THRESHOLD * DEFAULT_THRESHOLD + 1e-6,
                "{}: mse={mse:e}",
                variant.label()
            );
        }
    }

    #[test]
    fn delta_round_trips_exactly() {
        let wf = Gaussian::new(136, 0.5, 34.0).to_waveform("G", 4.54);
        let z = Compressor::new(Variant::Delta).compress(&wf).unwrap();
        let back = z.decompress().unwrap();
        // Delta is lossless up to Q1.15 quantization.
        assert!(wf.mse(&back) < 1e-9);
    }

    #[test]
    fn delta_compresses_monotone_channel_about_2x() {
        let wf = Gaussian::new(136, 0.5, 34.0).to_waveform("G", 4.54);
        let z = Compressor::new(Variant::Delta).compress(&wf).unwrap();
        let r = z.ratio().ratio();
        assert!((1.5..2.5).contains(&r), "got {r}");
    }

    #[test]
    fn delta_does_not_compress_zero_crossing_channel() {
        // DRAG Q channel crosses zero -> raw fallback for that channel.
        let wf = x_pulse();
        let z = Compressor::new(Variant::Delta).compress(&wf).unwrap();
        assert!(matches!(z.q, ChannelData::Raw(_)));
        assert!(matches!(z.i, ChannelData::Delta { .. }));
    }

    #[test]
    fn smooth_pulse_compresses_over_4x_with_ws16() {
        let wf = x_pulse();
        let z = Compressor::new(Variant::IntDctW { ws: 16 }).compress(&wf).unwrap();
        let r = z.ratio().ratio();
        assert!(r > 4.0, "got {r}");
    }

    #[test]
    fn flat_top_compresses_better_than_short_gaussian() {
        let c = Compressor::new(Variant::IntDctW { ws: 16 });
        let r_x = c.compress(&x_pulse()).unwrap().ratio().ratio();
        let r_cr = c.compress(&cr_pulse()).unwrap().ratio().ratio();
        assert!(r_cr > r_x, "CR {r_cr} vs X {r_x}");
    }

    #[test]
    fn dct_n_compresses_flat_top_most() {
        // Figure 7a: DCT-N achieves the highest per-waveform ratios on
        // long waveforms (one giant window, one RLE codeword).
        let wf = cr_pulse();
        let rn = Compressor::new(Variant::DctN).compress(&wf).unwrap().ratio().ratio();
        let rw = Compressor::new(Variant::DctW { ws: 16 }).compress(&wf).unwrap().ratio().ratio();
        assert!(rn > rw, "DCT-N {rn} vs DCT-W {rw}");
        assert!(rn > 20.0, "DCT-N on a flat-top should be dramatic: {rn}");
    }

    #[test]
    fn larger_windows_compress_better() {
        // Figure 7b: WS=8 has the least reduction because RLE is limited
        // to 8 samples at a time.
        let wf = cr_pulse();
        let r8 = Compressor::new(Variant::IntDctW { ws: 8 }).compress(&wf).unwrap().ratio().ratio();
        let r16 =
            Compressor::new(Variant::IntDctW { ws: 16 }).compress(&wf).unwrap().ratio().ratio();
        assert!(r16 > r8, "WS16 {r16} vs WS8 {r8}");
        assert!(r8 <= 8.0 + 0.1, "WS=8 ratio is bounded near 8x by the window");
    }

    #[test]
    fn channels_have_equal_words_per_window() {
        let wf = x_pulse();
        let z = Compressor::new(Variant::IntDctW { ws: 16 }).compress(&wf).unwrap();
        assert_eq!(z.i.window_word_counts(), z.q.window_word_counts());
    }

    #[test]
    fn worst_case_window_is_small_for_smooth_pulses() {
        // Figure 11: <= 3 words per window for int-DCT-W on real pulses.
        let z = Compressor::new(Variant::IntDctW { ws: 16 }).compress(&cr_pulse()).unwrap();
        assert!(z.worst_case_window_words() <= 5, "got {}", z.worst_case_window_words());
    }

    #[test]
    fn unsupported_window_is_rejected() {
        let err = Compressor::new(Variant::IntDctW { ws: 12 }).compress(&x_pulse()).unwrap_err();
        assert_eq!(err, CompressError::UnsupportedWindow(12));
        let err = Compressor::new(Variant::DctW { ws: 7 }).compress(&x_pulse()).unwrap_err();
        assert_eq!(err, CompressError::UnsupportedWindow(7));
    }

    #[test]
    fn lower_threshold_means_lower_mse_and_ratio() {
        let wf = x_pulse();
        let hi = Compressor::new(Variant::IntDctW { ws: 16 }).with_threshold(0.02);
        let lo = Compressor::new(Variant::IntDctW { ws: 16 }).with_threshold(0.0005);
        let z_hi = hi.compress(&wf).unwrap();
        let z_lo = lo.compress(&wf).unwrap();
        let mse_hi = wf.mse(&z_hi.decompress().unwrap());
        let mse_lo = wf.mse(&z_lo.decompress().unwrap());
        assert!(mse_lo <= mse_hi, "mse {mse_lo:e} vs {mse_hi:e}");
        assert!(z_lo.ratio().ratio() <= z_hi.ratio().ratio());
    }

    #[test]
    fn fidelity_aware_meets_target() {
        let wf = x_pulse();
        let c = Compressor::new(Variant::IntDctW { ws: 16 }).with_threshold(0.05);
        let target = 1e-6;
        let (z, used) = c.compress_with_target(&wf, target).unwrap();
        let mse = wf.mse(&z.decompress().unwrap());
        assert!(mse <= target, "mse {mse:e}");
        assert!(used <= 0.05);
    }

    #[test]
    fn fidelity_aware_fails_for_impossible_target() {
        let wf = x_pulse();
        let c = Compressor::new(Variant::IntDctW { ws: 8 });
        // int-DCT rounding alone exceeds this target.
        let err = c.compress_with_target(&wf, 1e-18).unwrap_err();
        assert!(matches!(err, CompressError::TargetUnreachable { .. }));
    }

    #[test]
    fn ratio_accounts_packed_iq_samples() {
        let wf = x_pulse();
        let z = Compressor::new(Variant::IntDctW { ws: 16 }).compress(&wf).unwrap();
        assert_eq!(z.ratio().old_size(), 136 * 4);
    }

    #[test]
    fn window_cap_bounds_worst_case() {
        let wf = x_pulse();
        let uncapped = Compressor::new(Variant::IntDctW { ws: 16 })
            .with_threshold(0.001)
            .compress(&wf)
            .unwrap();
        assert!(uncapped.worst_case_window_words() > 3);
        let capped = Compressor::new(Variant::IntDctW { ws: 16 })
            .with_threshold(0.001)
            .with_max_window_words(3)
            .compress(&wf)
            .unwrap();
        assert!(capped.worst_case_window_words() <= 3);
        // The cap is lossy but bounded: reconstruction still works.
        let mse = wf.mse(&capped.decompress().unwrap());
        assert!(mse < 1e-3, "mse {mse:e}");
    }

    #[test]
    fn window_cap_of_full_window_changes_nothing() {
        let wf = x_pulse();
        let a = Compressor::new(Variant::IntDctW { ws: 16 }).compress(&wf).unwrap();
        let b = Compressor::new(Variant::IntDctW { ws: 16 })
            .with_max_window_words(16)
            .compress(&wf)
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "codeword")]
    fn window_cap_below_two_rejected() {
        Compressor::new(Variant::IntDctW { ws: 16 }).with_max_window_words(1);
    }

    #[test]
    fn variant_labels_match_paper() {
        assert_eq!(Variant::IntDctW { ws: 16 }.label(), "int-DCT-W (WS=16)");
        assert_eq!(Variant::DctN.label(), "DCT-N");
    }
}
