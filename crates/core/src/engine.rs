//! The hardware decompression engine model (Figure 10).
//!
//! Decompression is a two-stage pipeline: (1) the RLE decoder expands
//! codewords into the RLE buffer, then (2) the IDCT produces a full window
//! of DAC samples. For `int-DCT-W` every constant multiply is a shift-add
//! network, so the IDCT has a constant one-cycle latency (Section V-B).
//!
//! This model is bit-exact with the software compressor's expectations and
//! additionally accounts memory reads, engine invocations and cycles — the
//! numbers the bandwidth-expansion and power analyses are built on.
//!
//! # The two decode paths and their contract
//!
//! A hardware engine has no allocator: its RLE buffer and sample buffer
//! are fixed SRAMs. The software model mirrors that with two APIs:
//!
//! * **Allocating** — [`DecompressionEngine::decompress`] /
//!   [`DecompressionEngine::decode_channel`] return fresh `Vec`s. Simple,
//!   `&self`, but pays one `Vec` per pipeline stage per window; this is
//!   the historical API and the baseline the `codec_throughput` bench
//!   measures against.
//! * **Buffer-reuse** — [`DecompressionEngine::decompress_into`] /
//!   [`DecompressionEngine::decode_channel_into`] thread every stage
//!   through a caller-owned [`DecodeScratch`] plus caller output `Vec`s.
//!   After the first decode warms the buffers, steady-state decoding of a
//!   whole pulse library performs **zero heap allocations per window**
//!   (the `alloc_regression` integration test enforces this), and the
//!   integer IDCT runs as one SoA-batched inverse per channel
//!   ([`compaqt_dsp::batched::BatchedIntDctPlan`]) through the
//!   runtime-dispatched SIMD kernels, bit-identical to the per-window
//!   reference ([`compaqt_dsp::intdct::IntDct::inverse_f64_into`]).
//!
//! Both paths are bit-exact with each other — the round-trip property
//! tests assert `==` on every sample, so figures computed through either
//! path agree. The engine itself stays `&self` and `Sync`: all mutable
//! state lives in the scratch, which is what lets
//! [`crate::batch`] fan one engine out across decoder threads with one
//! scratch per worker.
//!
//! The compile direction mirrors the same architecture: [`EncodeScratch`]
//! (defined here, consumed by [`crate::compress::Compressor::compress_into`]
//! and the overlapped/adaptive encoders) owns the compressor's working
//! memory, so a calibration cycle's recompression loop is just as
//! allocation-free as the decode loop. Both scratches share the bounded
//! keyed [`compaqt_dsp::plan::DctPlanCache`] for full-length `DCT-N`
//! plans.

use crate::compress::{ChannelData, CompressedWaveform, Variant};
use crate::CompressError;
use compaqt_dsp::batched::{BatchedDct, BatchedIntDctPlan};
use compaqt_dsp::dct::Dct;
use compaqt_dsp::fixed::Q15;
use compaqt_dsp::intdct::IntDct;
use compaqt_dsp::plan::DctPlanCache;
use compaqt_dsp::rle::{CodedWord, RleDecoder};
use compaqt_pulse::waveform::Waveform;
use serde::{Deserialize, Serialize};

/// Operation counts observed while decompressing (per waveform, both
/// channels).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineStats {
    /// 16-bit words fetched from compressed waveform memory.
    pub memory_words_read: usize,
    /// RLE codewords decoded.
    pub rle_codewords: usize,
    /// IDCT window evaluations.
    pub idct_windows: usize,
    /// Samples produced without touching the IDCT (adaptive bypass runs).
    pub bypassed_samples: usize,
    /// Total DAC samples produced.
    pub output_samples: usize,
    /// Engine cycles: one per memory word plus one per IDCT window (the
    /// unpipelined int-DCT-W engine completes a window per cycle after its
    /// inputs arrive).
    pub cycles: u64,
}

impl EngineStats {
    /// The waveform-memory bandwidth expansion factor: DAC samples
    /// delivered per memory word fetched (Figure 2b's "5x" is this
    /// number for typical pulse libraries).
    ///
    /// Returns `f64::INFINITY` when no memory reads occurred (pure bypass).
    pub fn bandwidth_expansion(&self) -> f64 {
        if self.memory_words_read == 0 {
            f64::INFINITY
        } else {
            self.output_samples as f64 / self.memory_words_read as f64
        }
    }

    /// Merges stats from another channel/segment.
    pub fn merge(&mut self, other: &EngineStats) {
        self.memory_words_read += other.memory_words_read;
        self.rle_codewords += other.rle_codewords;
        self.idct_windows += other.idct_windows;
        self.bypassed_samples += other.bypassed_samples;
        self.output_samples += other.output_samples;
        self.cycles += other.cycles;
    }
}

/// Caller-owned working memory for the zero-allocation decode path.
///
/// Models the fixed buffers of the hardware pipeline (Figure 10): the
/// RLE buffer feeding the IDCT and the dequantized-coefficient staging.
/// One scratch serves any window size and any variant — buffers grow to
/// the largest window seen and are reused thereafter. For `DCT-N` the
/// scratch caches inverse plans in a bounded keyed [`DctPlanCache`], so
/// a library mixing several waveform durations rebuilds each twiddle
/// table once instead of on every length change.
///
/// Scratches are cheap to create and intended to be per-thread: the
/// engine is shared (`&self`), the scratch is not.
///
/// # Example: decode a library through one scratch
///
/// ```
/// use compaqt_core::compress::{Compressor, Variant};
/// use compaqt_core::engine::{DecodeScratch, DecompressionEngine};
/// use compaqt_pulse::shapes::{Gaussian, PulseShape};
///
/// let compressor = Compressor::new(Variant::IntDctW { ws: 16 });
/// let engine = DecompressionEngine::for_variant(compressor.variant())?;
/// let mut scratch = DecodeScratch::new();
/// let (mut i, mut q) = (Vec::new(), Vec::new());
/// for n in [136usize, 160, 136, 160] {
///     let wf = Gaussian::new(n, 0.5, n as f64 / 4.0).to_waveform("G", 4.54);
///     let z = compressor.compress(&wf)?;
///     // After the first pass warms the buffers, repeat decodes of the
///     // same shapes perform zero heap allocations.
///     engine.decompress_into(&z, &mut scratch, &mut i, &mut q)?;
///     assert_eq!(i.len(), n);
/// }
/// # Ok::<(), compaqt_core::CompressError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct DecodeScratch {
    /// RLE-expanded integer coefficients for the current window.
    coeffs: Vec<i32>,
    /// Dequantized float coefficients (float and `DCT-N` variants).
    fcoeffs: Vec<f64>,
    /// Windowed IDCT output staging (overlap-add decoding).
    time: Vec<f64>,
    /// Flat RLE-expanded coefficient staging for the batched integer
    /// inverse (one window-sized chunk per transform window).
    batch_coeffs: Vec<i32>,
    /// Cached batched integer inverse plans, one per distinct window size
    /// (at most the five supported sizes, so no eviction is needed).
    batched: Vec<BatchedIntDctPlan>,
    /// Bounded `DCT-N` inverse plans, keyed by transform length.
    plans: DctPlanCache,
}

impl DecodeScratch {
    /// Creates an empty scratch (buffers grow on first use).
    pub fn new() -> Self {
        DecodeScratch::default()
    }

    /// The cached `DCT-N` plans (keyed by transform length, bounded).
    pub fn plan_cache(&self) -> &DctPlanCache {
        &self.plans
    }

    /// The cached batched integer inverse plan for `t`'s window size
    /// (built from a clone of `t` on first use), split-borrowed together
    /// with the flat coefficient staging buffer it consumes so the
    /// two-pass batched decode can hold both mutably at once.
    pub(crate) fn batched_int(&mut self, t: &IntDct) -> (&mut BatchedIntDctPlan, &mut Vec<i32>) {
        let ws = t.len();
        if !self.batched.iter().any(|p| p.len() == ws) {
            self.batched.push(BatchedIntDctPlan::from_transform(t.clone()));
        }
        let plan =
            self.batched.iter_mut().find(|p| p.len() == ws).expect("inserted above if missing");
        (plan, &mut self.batch_coeffs)
    }

    /// Splits out the (coeff, float-coeff, time) staging buffers at one
    /// window size — the stages of a lapped-transform decode.
    pub(crate) fn lapped_buffers(&mut self, ws: usize) -> (&mut [i32], &mut [f64], &mut [f64]) {
        self.coeffs.resize(ws, 0);
        self.fcoeffs.resize(ws, 0.0);
        self.time.resize(ws, 0.0);
        (&mut self.coeffs[..], &mut self.fcoeffs[..], &mut self.time[..])
    }
}

/// Caller-owned working memory for the zero-allocation *compress* path —
/// the encode twin of [`DecodeScratch`].
///
/// The compile side runs under the same cryogenic-controller budget it
/// decodes with: a calibration cycle recompresses every waveform of the
/// machine, and the original compressor allocated fresh `Vec`s per
/// window for sample staging, transform output and quantized
/// coefficients. This scratch owns all of that working memory instead:
///
/// * window staging for the float and integer transforms (zero-padded
///   tail windows included),
/// * per-window transform/threshold output,
/// * the flat per-channel quantized coefficient windows that I/Q
///   equalization consumes,
/// * cached transforms — a bounded keyed [`DctPlanCache`] for full-length
///   `DCT-N` forwards plus one cached batched plan
///   ([`BatchedDct`]/[`BatchedIntDctPlan`]) per windowed size (at most
///   the five supported sizes, so no eviction is needed).
///
/// With a reused scratch and a reused output stream
/// ([`crate::compress::Compressor::compress_into`]), steady-state
/// library compression performs zero heap allocations — enforced by the
/// `alloc_regression` integration test alongside the decode guarantee.
///
/// # Example: recompress into reused buffers
///
/// ```
/// use compaqt_core::compress::{CompressedWaveform, Compressor, Variant};
/// use compaqt_core::engine::EncodeScratch;
/// use compaqt_pulse::shapes::{Drag, PulseShape};
///
/// let compressor = Compressor::new(Variant::IntDctW { ws: 16 });
/// let wf = Drag::new(136, 0.5, 34.0, 0.2).to_waveform("X(q0)", 4.54);
/// let mut scratch = EncodeScratch::new();
/// let mut z = CompressedWaveform::empty();
/// for _ in 0..3 {
///     // First pass sizes every buffer; later passes reuse them all.
///     compressor.compress_into(&wf, &mut scratch, &mut z)?;
/// }
/// assert_eq!(z, compressor.compress(&wf)?, "paths are bit-identical");
/// # Ok::<(), compaqt_core::CompressError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct EncodeScratch {
    /// Float window staging (transform input, zero-padded tail).
    pub(crate) window: Vec<f64>,
    /// Float transform/threshold output for the current window.
    pub(crate) fcoeffs: Vec<f64>,
    /// Integer transform/threshold output for the current window.
    pub(crate) icoeffs: Vec<i32>,
    /// Flat quantized coefficient windows for the I channel.
    pub(crate) i_coeffs: Vec<i32>,
    /// Flat quantized coefficient windows for the Q channel.
    pub(crate) q_coeffs: Vec<i32>,
    /// Q1.15 sample staging for the delta encoder.
    pub(crate) qsamples: Vec<i16>,
    /// Spare per-window word lists, parked here when a reused output
    /// slot shrinks so their capacity survives mixed-size libraries.
    pub(crate) spare_windows: Vec<Vec<CodedWord>>,
    /// Flat Q1.15 staging for the batched integer forward: every window
    /// of one channel, zero-padded tail included.
    pub(crate) q_stage: Vec<Q15>,
    /// Flat float staging for the batched float forward.
    pub(crate) f_stage: Vec<f64>,
    /// Bounded `DCT-N` forward plans, keyed by waveform length.
    pub(crate) plans: DctPlanCache,
    /// Cached batched integer forward plans, one per window size.
    pub(crate) batched_int: Vec<BatchedIntDctPlan>,
    /// Cached batched float forward plans, one per window size.
    pub(crate) batched_dcts: Vec<BatchedDct>,
}

impl EncodeScratch {
    /// Creates an empty scratch (buffers grow on first use).
    pub fn new() -> Self {
        EncodeScratch::default()
    }

    /// The cached `DCT-N` forward plans (keyed by length, bounded).
    pub fn plan_cache(&self) -> &DctPlanCache {
        &self.plans
    }

    /// The cached batched integer forward plan for window size `ws`.
    ///
    /// # Errors
    ///
    /// Returns [`CompressError::UnsupportedWindow`] for unsupported sizes.
    pub(crate) fn batched_int_plan(
        &mut self,
        ws: usize,
    ) -> Result<&mut BatchedIntDctPlan, CompressError> {
        if let Some(idx) = self.batched_int.iter().position(|p| p.len() == ws) {
            Ok(&mut self.batched_int[idx])
        } else {
            let plan =
                BatchedIntDctPlan::new(ws).map_err(|e| CompressError::UnsupportedWindow(e.size))?;
            self.batched_int.push(plan);
            Ok(self.batched_int.last_mut().expect("just pushed"))
        }
    }

    /// The cached batched float forward plan for window size `ws`, built
    /// on first use.
    pub(crate) fn batched_dct(&mut self, ws: usize) -> &mut BatchedDct {
        if let Some(idx) = self.batched_dcts.iter().position(|p| p.len() == ws) {
            &mut self.batched_dcts[idx]
        } else {
            self.batched_dcts.push(BatchedDct::new(ws));
            self.batched_dcts.last_mut().expect("just pushed")
        }
    }

    /// Splits out the (window, float-coeff, int-coeff) staging buffers at
    /// one window size — the stages of a windowed float encode.
    pub(crate) fn float_buffers(&mut self, ws: usize) -> (&mut [f64], &mut [f64], &mut [i32]) {
        self.window.resize(ws, 0.0);
        self.fcoeffs.resize(ws, 0.0);
        self.icoeffs.resize(ws, 0);
        (&mut self.window[..], &mut self.fcoeffs[..], &mut self.icoeffs[..])
    }
}

/// The inverse transform stage of the engine.
#[derive(Debug, Clone)]
enum InverseStage {
    /// Delta / raw channels need no transform.
    None,
    /// Float IDCT with the stored-coefficient dequantization scale.
    Float { dct: Dct, scale: f64 },
    /// Integer IDCT (shift-add hardware).
    Integer(IntDct),
}

/// A modelled decompression engine for one variant.
#[derive(Debug, Clone)]
pub struct DecompressionEngine {
    variant: Variant,
    window: usize,
    stage: InverseStage,
}

impl DecompressionEngine {
    /// Builds the engine matching a compression variant.
    ///
    /// For `DCT-N` the engine is built lazily per waveform (the window is
    /// the waveform length); this constructor accepts it and defers.
    ///
    /// # Errors
    ///
    /// Returns [`CompressError::UnsupportedWindow`] for bad window sizes.
    pub fn for_variant(variant: Variant) -> Result<Self, CompressError> {
        let (window, stage) = match variant {
            Variant::Delta => (0, InverseStage::None),
            Variant::DctN => (0, InverseStage::None), // built per waveform
            Variant::DctW { ws } => {
                if !compaqt_dsp::intdct::SUPPORTED_SIZES.contains(&ws) {
                    return Err(CompressError::UnsupportedWindow(ws));
                }
                let scale = f64::from(1u32 << crate::compress::float_coeff_scale_bits(ws));
                (ws, InverseStage::Float { dct: Dct::new(ws), scale })
            }
            Variant::IntDctW { ws } => {
                let t = IntDct::new(ws).map_err(|e| CompressError::UnsupportedWindow(e.size))?;
                (ws, InverseStage::Integer(t))
            }
        };
        Ok(DecompressionEngine { variant, window, stage })
    }

    /// The variant this engine decodes.
    pub fn variant(&self) -> Variant {
        self.variant
    }

    /// Decompresses a waveform, returning the reconstruction and the
    /// operation counts.
    ///
    /// # Errors
    ///
    /// Returns an error if a stream is malformed or the waveform's variant
    /// does not match the engine.
    pub fn decompress(
        &self,
        z: &CompressedWaveform,
    ) -> Result<(Waveform, EngineStats), CompressError> {
        let mut stats = EngineStats::default();
        let i = self.decode_channel(&z.i, z.n_samples, &mut stats)?;
        let q = self.decode_channel(&z.q, z.n_samples, &mut stats)?;
        let wf = checked_waveform(&z.name, i, q, z.sample_rate_gs)?;
        Ok((wf, stats))
    }

    /// Decodes one channel into DAC samples, accumulating stats.
    pub fn decode_channel(
        &self,
        channel: &ChannelData,
        n_samples: usize,
        stats: &mut EngineStats,
    ) -> Result<Vec<f64>, CompressError> {
        match channel {
            ChannelData::Raw(samples) => {
                stats.memory_words_read += samples.len();
                stats.output_samples += samples.len();
                stats.cycles += samples.len() as u64;
                Ok(samples.iter().map(|&s| f64::from(s) / 32768.0).collect())
            }
            ChannelData::Delta { base, bits, deltas } => {
                let words = channel.size_bits().div_ceil(16);
                let _ = bits;
                stats.memory_words_read += words;
                stats.output_samples += deltas.len() + 1;
                stats.cycles += (deltas.len() + 1) as u64;
                // Wrapping i16 accumulation: bit-identical to the exact
                // sum for every stream the encoder emits, and well
                // defined (no debug-overflow panic) for hostile delta
                // chains that walk past the i32 range.
                let mut acc = *base;
                let mut out = Vec::with_capacity(deltas.len() + 1);
                out.push(f64::from(acc) / 32768.0);
                for &d in deltas {
                    acc = acc.wrapping_add(d);
                    out.push(f64::from(acc) / 32768.0);
                }
                Ok(out)
            }
            ChannelData::Windows(windows) => {
                let decoder = RleDecoder::new();
                let window = self.effective_window(windows.len(), n_samples)?;
                check_window_claims(windows, window)?;
                let mut out: Vec<f64> =
                    Vec::with_capacity(windows.len().saturating_mul(window).min(n_samples));
                for words in windows {
                    stats.memory_words_read += words.len();
                    stats.rle_codewords +=
                        words.iter().filter(|w| matches!(w, CodedWord::Rle(_))).count();
                    let coeffs = decoder.decode_window(words, window)?;
                    let samples = self.inverse(&coeffs, window);
                    stats.idct_windows += 1;
                    stats.cycles += words.len() as u64 + 1;
                    out.extend_from_slice(&samples);
                }
                stats.output_samples += n_samples.min(out.len());
                out.truncate(n_samples);
                Ok(out)
            }
        }
    }

    /// Decompresses into caller-provided buffers, returning the operation
    /// counts. `i_out`/`q_out` are cleared and refilled; with a reused
    /// scratch and output buffers, steady-state decoding allocates
    /// nothing. Bit-exact with [`DecompressionEngine::decompress`].
    ///
    /// # Errors
    ///
    /// Returns an error if a stream is malformed.
    pub fn decompress_into(
        &self,
        z: &CompressedWaveform,
        scratch: &mut DecodeScratch,
        i_out: &mut Vec<f64>,
        q_out: &mut Vec<f64>,
    ) -> Result<EngineStats, CompressError> {
        let mut stats = EngineStats::default();
        i_out.clear();
        q_out.clear();
        self.decode_channel_into(&z.i, z.n_samples, scratch, i_out, &mut stats)?;
        self.decode_channel_into(&z.q, z.n_samples, scratch, q_out, &mut stats)?;
        check_channel_shapes(i_out.len(), q_out.len())?;
        check_sample_rate(z.sample_rate_gs)?;
        Ok(stats)
    }

    /// Decodes one channel, *appending* `n_samples` DAC samples to `out`
    /// and accumulating stats — the zero-allocation twin of
    /// [`DecompressionEngine::decode_channel`].
    ///
    /// Appending (rather than overwriting) lets segment decoders like the
    /// adaptive IDCT-bypass path chain calls into one output buffer. All
    /// intermediate stages run through `scratch`; after warm-up the only
    /// heap activity is `out`'s own amortized growth, which a caller
    /// reusing its buffers never pays again.
    ///
    /// # Errors
    ///
    /// Returns an error if a run-length stream is malformed or the
    /// channel's shape does not match the engine.
    pub fn decode_channel_into(
        &self,
        channel: &ChannelData,
        n_samples: usize,
        scratch: &mut DecodeScratch,
        out: &mut Vec<f64>,
        stats: &mut EngineStats,
    ) -> Result<(), CompressError> {
        match channel {
            ChannelData::Raw(samples) => {
                stats.memory_words_read += samples.len();
                stats.output_samples += samples.len();
                stats.cycles += samples.len() as u64;
                out.extend(samples.iter().map(|&s| f64::from(s) / 32768.0));
                Ok(())
            }
            ChannelData::Delta { base, bits, deltas } => {
                let words = channel.size_bits().div_ceil(16);
                let _ = bits;
                stats.memory_words_read += words;
                stats.output_samples += deltas.len() + 1;
                stats.cycles += (deltas.len() + 1) as u64;
                // Wrapping i16 accumulation; see `decode_channel`.
                let mut acc = *base;
                out.reserve(deltas.len() + 1);
                out.push(f64::from(acc) / 32768.0);
                for &d in deltas {
                    acc = acc.wrapping_add(d);
                    out.push(f64::from(acc) / 32768.0);
                }
                Ok(())
            }
            ChannelData::Windows(windows) => {
                let decoder = RleDecoder::new();
                let window = self.effective_window(windows.len(), n_samples)?;
                check_window_claims(windows, window)?;
                let base = out.len();
                let total =
                    windows.len().checked_mul(window).and_then(|t| t.checked_add(base)).ok_or(
                        CompressError::MalformedStream {
                            reason: "window layout overflows the address space",
                        },
                    )?;
                out.resize(total, 0.0);
                let produced = total - base;
                if let InverseStage::Integer(t) = &self.stage {
                    // Both integer decode kernels below are bit-exact
                    // with each other, so picking one is purely a
                    // throughput decision. Sparse streams — the common
                    // case; real pulses keep ~3 stored words per
                    // 16-sample window — win with the fused per-window
                    // kernel, whose cost scales with the stored words.
                    // Dense streams win with the SoA-batched SIMD
                    // inverse, whose cost is flat per sample. Average
                    // fill of at least half the window flips to batched.
                    let total_words: usize = windows.iter().map(Vec::len).sum();
                    if total_words.saturating_mul(2) >= produced {
                        // Batched integer decode: pass 1 expands every
                        // window's codewords into the flat staging buffer
                        // (one window-sized chunk each), pass 2 runs a
                        // single SoA-batched inverse over the whole
                        // channel through the runtime-dispatched SIMD
                        // kernels.
                        let (plan, staging) = scratch.batched_int(t);
                        staging.resize(produced, 0);
                        for (words, cdst) in windows.iter().zip(staging.chunks_exact_mut(window)) {
                            stats.memory_words_read += words.len();
                            stats.rle_codewords +=
                                words.iter().filter(|w| matches!(w, CodedWord::Rle(_))).count();
                            decoder.decode_window_into(words, cdst)?;
                            stats.idct_windows += 1;
                            stats.cycles += words.len() as u64 + 1;
                        }
                        plan.inverse_f64_batched_into(
                            staging,
                            crate::compress::INT_STORE_SHIFT,
                            &mut out[base..total],
                        );
                    } else {
                        let mut pos = base;
                        for words in windows {
                            stats.memory_words_read += words.len();
                            stats.rle_codewords +=
                                words.iter().filter(|w| matches!(w, CodedWord::Rle(_))).count();
                            fused_int_window(
                                t,
                                words,
                                &mut scratch.coeffs,
                                &mut out[pos..pos + window],
                            )?;
                            stats.idct_windows += 1;
                            stats.cycles += words.len() as u64 + 1;
                            pos += window;
                        }
                    }
                } else {
                    let mut pos = base;
                    for words in windows {
                        stats.memory_words_read += words.len();
                        stats.rle_codewords +=
                            words.iter().filter(|w| matches!(w, CodedWord::Rle(_))).count();
                        let dst = &mut out[pos..pos + window];
                        scratch.coeffs.resize(window, 0);
                        decoder.decode_window_into(words, &mut scratch.coeffs)?;
                        self.inverse_into(scratch, window, dst);
                        stats.idct_windows += 1;
                        stats.cycles += words.len() as u64 + 1;
                        pos += window;
                    }
                }
                stats.output_samples += n_samples.min(produced);
                out.truncate(base + n_samples.min(produced));
                Ok(())
            }
        }
    }

    /// Inverse-transforms `scratch.coeffs` into `dst` without allocating.
    fn inverse_into(&self, scratch: &mut DecodeScratch, window: usize, dst: &mut [f64]) {
        match &self.stage {
            InverseStage::Integer(_) => {
                // decode_channel_into routes every integer window through
                // fused_int_window or the batched SoA inverse; keeping a
                // third integer kernel here would invite silent
                // divergence between them.
                unreachable!("integer windows are decoded by the fused or batched kernels")
            }
            InverseStage::Float { dct, scale } => {
                scratch.fcoeffs.resize(window, 0.0);
                for (f, &c) in scratch.fcoeffs.iter_mut().zip(&scratch.coeffs) {
                    *f = f64::from(c) / scale;
                }
                dct.inverse_into(&scratch.fcoeffs, dst);
            }
            InverseStage::None => {
                // DCT-N: full-length inverse through the cached plan.
                let scale = f64::from(1u32 << crate::compress::float_coeff_scale_bits(window));
                scratch.fcoeffs.resize(window, 0.0);
                for (f, &c) in scratch.fcoeffs.iter_mut().zip(&scratch.coeffs) {
                    *f = f64::from(c) / scale;
                }
                scratch.plans.plan(window).inverse_into(&scratch.fcoeffs, dst);
            }
        }
    }

    /// Window length for this stream: fixed for windowed variants, the
    /// padded waveform length for `DCT-N`.
    ///
    /// # Errors
    ///
    /// Returns [`CompressError::MalformedStream`] for a `DCT-N` stream
    /// that does not store exactly one window (the compressor never
    /// emits one; a corrupted or hostile stream can claim anything).
    fn effective_window(&self, n_windows: usize, n_samples: usize) -> Result<usize, CompressError> {
        if self.window > 0 {
            Ok(self.window)
        } else if n_windows == 1 {
            Ok(n_samples)
        } else {
            Err(CompressError::MalformedStream { reason: "DCT-N streams store exactly one window" })
        }
    }

    fn inverse(&self, coeffs: &[i32], window: usize) -> Vec<f64> {
        match &self.stage {
            InverseStage::Integer(t) => {
                // Undo the storage headroom shift (the lost LSBs are part
                // of the measured quantization error).
                let native: Vec<i32> =
                    coeffs.iter().map(|&c| c << crate::compress::INT_STORE_SHIFT).collect();
                t.inverse_f64(&native)
            }
            InverseStage::Float { dct, scale } => {
                let f: Vec<f64> = coeffs.iter().map(|&c| f64::from(c) / scale).collect();
                dct.inverse(&f)
            }
            InverseStage::None => {
                // DCT-N: O(N log N) inverse at the waveform's full length.
                let scale = f64::from(1u32 << crate::compress::float_coeff_scale_bits(window));
                let f: Vec<f64> = coeffs.iter().map(|&c| f64::from(c) / scale).collect();
                compaqt_dsp::fastdct::fast_dct3(&f)
            }
        }
    }
}

/// Post-decode consistency check shared by every whole-waveform decode
/// path (engine, batch, adaptive): a stream whose channels expand to
/// different sample counts (or to none at all) cannot have come from
/// the compressor — reject it instead of letting `Waveform::new`'s
/// invariants panic on hostile input.
pub(crate) fn check_channel_shapes(i_len: usize, q_len: usize) -> Result<(), CompressError> {
    if i_len != q_len {
        return Err(CompressError::MalformedStream {
            reason: "I and Q channels decode to different sample counts",
        });
    }
    if i_len == 0 {
        return Err(CompressError::MalformedStream { reason: "stream decodes to no samples" });
    }
    Ok(())
}

/// Metadata check for the stored sample rate: `Waveform::new` (and all
/// timing math downstream) requires a finite positive rate, so a hostile
/// header is rejected as malformed — never clamped to a fabricated rate
/// and never allowed to reach the constructor's panic.
pub(crate) fn check_sample_rate(sample_rate_gs: f64) -> Result<(), CompressError> {
    if sample_rate_gs.is_finite() && sample_rate_gs > 0.0 {
        Ok(())
    } else {
        Err(CompressError::MalformedStream { reason: "sample rate is not a positive finite value" })
    }
}

/// Validating [`Waveform`] constructor shared by every decode path that
/// materializes one from untrusted stream fields.
pub(crate) fn checked_waveform(
    name: &str,
    i: Vec<f64>,
    q: Vec<f64>,
    sample_rate_gs: f64,
) -> Result<Waveform, CompressError> {
    check_channel_shapes(i.len(), q.len())?;
    check_sample_rate(sample_rate_gs)?;
    Ok(Waveform::new(name.to_string(), i, q, sample_rate_gs))
}

/// Pre-decode guard against length-lying streams: a window claiming more
/// samples than its codewords could possibly expand to (at most
/// [`compaqt_dsp::rle::MAX_RUN`] per word) is mathematically guaranteed
/// to underflow, so it is rejected *before* any buffer is sized from the
/// claim — output allocation stays linear in the attacker-supplied
/// stream, never in its metadata.
fn check_window_claims(windows: &[Vec<CodedWord>], window: usize) -> Result<(), CompressError> {
    let max_run = usize::from(compaqt_dsp::rle::MAX_RUN);
    for words in windows {
        if window > words.len().saturating_mul(max_run) {
            return Err(CompressError::MalformedStream {
                reason: "window claims more samples than its codewords can expand to",
            });
        }
    }
    Ok(())
}

/// Fused RLE-decode + integer IDCT for one window: coefficient words
/// accumulate their basis row directly (zero-run codewords advance the
/// position without touching the accumulators — the RLE buffer stage of
/// Figure 10 collapses away). This is the sparse-stream inner loop of
/// the zero-allocation int-DCT-W decode path; dense streams take the
/// SoA-batched inverse instead (see
/// [`DecompressionEngine::decode_channel_into`]).
///
/// Accumulators are `i32` on the stack: the worst case
/// `sum_k |T[k][i]| * |coeff| * 2^INT_STORE_SHIFT` is
/// `5760 * 32768 * 4 < 2^30` at WS=64, so the arithmetic cannot overflow
/// and the result is bit-identical to the i64 reference kernel
/// ([`IntDct::inverse_f64_into`]); the round-trip property suite asserts
/// the equality on every variant.
///
/// Windows carrying repeat-previous codewords (possible in hand-built
/// streams, never emitted by the windowed compressor) fall back to the
/// materializing decoder through the caller's `coeffs` staging buffer to
/// preserve exact RLE semantics.
fn fused_int_window(
    t: &IntDct,
    words: &[CodedWord],
    coeffs: &mut Vec<i32>,
    dst: &mut [f64],
) -> Result<(), CompressError> {
    use compaqt_dsp::rle::{RleCodeword, RleError};
    let window = dst.len();
    if words.iter().any(|w| matches!(w, CodedWord::Rle(RleCodeword { repeat_previous: true, .. })))
    {
        // Rare general case: materialize the coefficient window.
        coeffs.resize(window, 0);
        RleDecoder::new().decode_window_into(words, coeffs)?;
        t.inverse_f64_into(coeffs, crate::compress::INT_STORE_SHIFT, dst);
        return Ok(());
    }
    let mut acc = [0i32; 64];
    let acc = &mut acc[..window];
    let mut pos = 0usize;
    for &w in words {
        match w {
            CodedWord::Coeff(v) => {
                if pos >= window {
                    return Err(RleError::Overflow { produced: pos + 1, window }.into());
                }
                if v != 0 {
                    let v = i32::from(v);
                    for (a, &row) in acc.iter_mut().zip(t.row(pos)) {
                        *a += row * v;
                    }
                }
                pos += 1;
            }
            CodedWord::Rle(RleCodeword { run, .. }) => {
                // Zero run: nothing reaches the accumulators.
                let run = usize::from(run);
                if run > window - pos {
                    return Err(RleError::Overflow { produced: pos + run, window }.into());
                }
                pos += run;
            }
        }
    }
    if pos != window {
        return Err(RleError::Underflow { produced: pos, window }.into());
    }
    let shift = t.inverse_shift();
    let rnd = 1i32 << (shift - 1);
    for (o, &a) in dst.iter_mut().zip(acc.iter()) {
        let v = ((a << crate::compress::INT_STORE_SHIFT) + rnd) >> shift;
        let raw = v.clamp(i32::from(i16::MIN), i32::from(i16::MAX)) as i16;
        *o = f64::from(raw) / 32768.0;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compress::Compressor;
    use compaqt_pulse::shapes::{Drag, GaussianSquare, PulseShape};

    fn x_pulse() -> Waveform {
        Drag::new(136, 0.5, 34.0, 0.2).to_waveform("X(q0)", 4.54)
    }

    #[test]
    fn engine_matches_compressor_expectation() {
        let wf = x_pulse();
        let z = Compressor::new(Variant::IntDctW { ws: 16 }).compress(&wf).unwrap();
        let engine = DecompressionEngine::for_variant(z.variant).unwrap();
        let (restored, stats) = engine.decompress(&z).unwrap();
        assert!(wf.mse(&restored) < 1e-4);
        assert_eq!(stats.output_samples, 136 * 2);
        assert_eq!(stats.memory_words_read, z.words());
    }

    #[test]
    fn bandwidth_expansion_exceeds_4x_for_smooth_pulses() {
        let wf = GaussianSquare::new(1362, 0.3, 40.0, 1020).to_waveform("CR", 4.54);
        let z = Compressor::new(Variant::IntDctW { ws: 16 }).compress(&wf).unwrap();
        let engine = DecompressionEngine::for_variant(z.variant).unwrap();
        let (_, stats) = engine.decompress(&z).unwrap();
        assert!(stats.bandwidth_expansion() > 4.0, "expansion {}", stats.bandwidth_expansion());
    }

    #[test]
    fn idct_invocations_match_window_count() {
        let wf = x_pulse(); // 136 samples -> 9 windows of 16 per channel
        let z = Compressor::new(Variant::IntDctW { ws: 16 }).compress(&wf).unwrap();
        let engine = DecompressionEngine::for_variant(z.variant).unwrap();
        let (_, stats) = engine.decompress(&z).unwrap();
        assert_eq!(stats.idct_windows, 9 * 2);
    }

    #[test]
    fn delta_channel_decodes_without_idct() {
        let wf = compaqt_pulse::shapes::Gaussian::new(100, 0.5, 25.0).to_waveform("G", 4.54);
        let z = Compressor::new(Variant::Delta).compress(&wf).unwrap();
        let engine = DecompressionEngine::for_variant(Variant::Delta).unwrap();
        let (restored, stats) = engine.decompress(&z).unwrap();
        assert_eq!(stats.idct_windows, 0);
        assert!(wf.mse(&restored) < 1e-9);
    }

    #[test]
    fn stats_merge_adds_fields() {
        let mut a = EngineStats {
            memory_words_read: 1,
            rle_codewords: 2,
            idct_windows: 3,
            bypassed_samples: 4,
            output_samples: 5,
            cycles: 6,
        };
        a.merge(&a.clone());
        assert_eq!(a.memory_words_read, 2);
        assert_eq!(a.cycles, 12);
    }

    #[test]
    fn rejects_unsupported_window() {
        assert!(DecompressionEngine::for_variant(Variant::IntDctW { ws: 10 }).is_err());
    }

    #[test]
    fn malformed_stream_is_an_error_not_a_panic() {
        use compaqt_dsp::rle::{CodedWord, RleCodeword};
        // A window claiming a 100-sample zero run inside a 16-sample
        // window must be rejected (bit-flip / corruption robustness).
        let bogus = crate::compress::ChannelData::Windows(vec![vec![
            CodedWord::Coeff(5),
            CodedWord::Rle(RleCodeword { run: 100, repeat_previous: false }),
        ]]);
        let engine = DecompressionEngine::for_variant(Variant::IntDctW { ws: 16 }).unwrap();
        let mut stats = EngineStats::default();
        let err = engine.decode_channel(&bogus, 16, &mut stats).unwrap_err();
        assert!(matches!(err, crate::CompressError::Rle(_)));
    }

    #[test]
    fn into_path_is_bit_exact_with_allocating_path() {
        let wf = x_pulse();
        for variant in
            [Variant::Delta, Variant::DctN, Variant::DctW { ws: 8 }, Variant::IntDctW { ws: 16 }]
        {
            let z = Compressor::new(variant).compress(&wf).unwrap();
            let engine = DecompressionEngine::for_variant(variant).unwrap();
            let (alloc, alloc_stats) = engine.decompress(&z).unwrap();
            let mut scratch = DecodeScratch::new();
            let (mut i, mut q) = (Vec::new(), Vec::new());
            let stats = engine.decompress_into(&z, &mut scratch, &mut i, &mut q).unwrap();
            assert_eq!(alloc.i(), &i[..], "{variant:?} I channel");
            assert_eq!(alloc.q(), &q[..], "{variant:?} Q channel");
            assert_eq!(alloc_stats, stats, "{variant:?} stats");
        }
    }

    #[test]
    fn scratch_and_buffers_are_reusable_across_waveforms() {
        let engine = DecompressionEngine::for_variant(Variant::IntDctW { ws: 16 }).unwrap();
        let mut scratch = DecodeScratch::new();
        let (mut i, mut q) = (Vec::new(), Vec::new());
        for n in [136usize, 1362, 454] {
            let wf = GaussianSquare::new(n, 0.3, 30.0, n / 2).to_waveform("w", 4.54);
            let z = Compressor::new(Variant::IntDctW { ws: 16 }).compress(&wf).unwrap();
            engine.decompress_into(&z, &mut scratch, &mut i, &mut q).unwrap();
            assert_eq!(i.len(), n);
            let (expect, _) = engine.decompress(&z).unwrap();
            assert_eq!(expect.i(), &i[..]);
        }
    }

    #[test]
    fn into_path_rejects_malformed_streams() {
        use compaqt_dsp::rle::{CodedWord, RleCodeword};
        let bogus = crate::compress::ChannelData::Windows(vec![vec![
            CodedWord::Coeff(5),
            CodedWord::Rle(RleCodeword { run: 100, repeat_previous: false }),
        ]]);
        let engine = DecompressionEngine::for_variant(Variant::IntDctW { ws: 16 }).unwrap();
        let mut scratch = DecodeScratch::new();
        let mut out = Vec::new();
        let mut stats = EngineStats::default();
        let err =
            engine.decode_channel_into(&bogus, 16, &mut scratch, &mut out, &mut stats).unwrap_err();
        assert!(matches!(err, crate::CompressError::Rle(_)));
    }

    #[test]
    fn dct_n_engine_round_trips_long_waveforms() {
        let wf = GaussianSquare::new(1362, 0.3, 40.0, 1020).to_waveform("CR", 4.54);
        let z = Compressor::new(Variant::DctN).compress(&wf).unwrap();
        let engine = DecompressionEngine::for_variant(Variant::DctN).unwrap();
        let (restored, stats) = engine.decompress(&z).unwrap();
        assert!(wf.mse(&restored) < 1e-4, "mse {:e}", wf.mse(&restored));
        assert_eq!(stats.idct_windows, 2, "one full-length window per channel");
        assert!(stats.bandwidth_expansion() > 10.0);
    }
}
