//! The hardware decompression engine model (Figure 10).
//!
//! Decompression is a two-stage pipeline: (1) the RLE decoder expands
//! codewords into the RLE buffer, then (2) the IDCT produces a full window
//! of DAC samples. For `int-DCT-W` every constant multiply is a shift-add
//! network, so the IDCT has a constant one-cycle latency (Section V-B).
//!
//! This model is bit-exact with the software compressor's expectations and
//! additionally accounts memory reads, engine invocations and cycles — the
//! numbers the bandwidth-expansion and power analyses are built on.

use crate::compress::{ChannelData, CompressedWaveform, Variant};
use crate::CompressError;
use compaqt_dsp::dct::Dct;
use compaqt_dsp::intdct::IntDct;
use compaqt_dsp::rle::{CodedWord, RleDecoder};
use compaqt_pulse::waveform::Waveform;
use serde::{Deserialize, Serialize};

/// Operation counts observed while decompressing (per waveform, both
/// channels).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineStats {
    /// 16-bit words fetched from compressed waveform memory.
    pub memory_words_read: usize,
    /// RLE codewords decoded.
    pub rle_codewords: usize,
    /// IDCT window evaluations.
    pub idct_windows: usize,
    /// Samples produced without touching the IDCT (adaptive bypass runs).
    pub bypassed_samples: usize,
    /// Total DAC samples produced.
    pub output_samples: usize,
    /// Engine cycles: one per memory word plus one per IDCT window (the
    /// unpipelined int-DCT-W engine completes a window per cycle after its
    /// inputs arrive).
    pub cycles: u64,
}

impl EngineStats {
    /// The waveform-memory bandwidth expansion factor: DAC samples
    /// delivered per memory word fetched (Figure 2b's "5x" is this
    /// number for typical pulse libraries).
    ///
    /// Returns `f64::INFINITY` when no memory reads occurred (pure bypass).
    pub fn bandwidth_expansion(&self) -> f64 {
        if self.memory_words_read == 0 {
            f64::INFINITY
        } else {
            self.output_samples as f64 / self.memory_words_read as f64
        }
    }

    /// Merges stats from another channel/segment.
    pub fn merge(&mut self, other: &EngineStats) {
        self.memory_words_read += other.memory_words_read;
        self.rle_codewords += other.rle_codewords;
        self.idct_windows += other.idct_windows;
        self.bypassed_samples += other.bypassed_samples;
        self.output_samples += other.output_samples;
        self.cycles += other.cycles;
    }
}

/// The inverse transform stage of the engine.
#[derive(Debug, Clone)]
enum InverseStage {
    /// Delta / raw channels need no transform.
    None,
    /// Float IDCT with the stored-coefficient dequantization scale.
    Float { dct: Dct, scale: f64 },
    /// Integer IDCT (shift-add hardware).
    Integer(IntDct),
}

/// A modelled decompression engine for one variant.
#[derive(Debug, Clone)]
pub struct DecompressionEngine {
    variant: Variant,
    window: usize,
    stage: InverseStage,
}

impl DecompressionEngine {
    /// Builds the engine matching a compression variant.
    ///
    /// For `DCT-N` the engine is built lazily per waveform (the window is
    /// the waveform length); this constructor accepts it and defers.
    ///
    /// # Errors
    ///
    /// Returns [`CompressError::UnsupportedWindow`] for bad window sizes.
    pub fn for_variant(variant: Variant) -> Result<Self, CompressError> {
        let (window, stage) = match variant {
            Variant::Delta => (0, InverseStage::None),
            Variant::DctN => (0, InverseStage::None), // built per waveform
            Variant::DctW { ws } => {
                if !compaqt_dsp::intdct::SUPPORTED_SIZES.contains(&ws) {
                    return Err(CompressError::UnsupportedWindow(ws));
                }
                let scale = f64::from(1u32 << crate::compress::float_coeff_scale_bits(ws));
                (ws, InverseStage::Float { dct: Dct::new(ws), scale })
            }
            Variant::IntDctW { ws } => {
                let t = IntDct::new(ws).map_err(|e| CompressError::UnsupportedWindow(e.size))?;
                (ws, InverseStage::Integer(t))
            }
        };
        Ok(DecompressionEngine { variant, window, stage })
    }

    /// The variant this engine decodes.
    pub fn variant(&self) -> Variant {
        self.variant
    }

    /// Decompresses a waveform, returning the reconstruction and the
    /// operation counts.
    ///
    /// # Errors
    ///
    /// Returns an error if a stream is malformed or the waveform's variant
    /// does not match the engine.
    pub fn decompress(
        &self,
        z: &CompressedWaveform,
    ) -> Result<(Waveform, EngineStats), CompressError> {
        let mut stats = EngineStats::default();
        let i = self.decode_channel(&z.i, z.n_samples, &mut stats)?;
        let q = self.decode_channel(&z.q, z.n_samples, &mut stats)?;
        let wf = Waveform::new(z.name.clone(), i, q, z.sample_rate_gs);
        Ok((wf, stats))
    }

    /// Decodes one channel into DAC samples, accumulating stats.
    pub fn decode_channel(
        &self,
        channel: &ChannelData,
        n_samples: usize,
        stats: &mut EngineStats,
    ) -> Result<Vec<f64>, CompressError> {
        match channel {
            ChannelData::Raw(samples) => {
                stats.memory_words_read += samples.len();
                stats.output_samples += samples.len();
                stats.cycles += samples.len() as u64;
                Ok(samples.iter().map(|&s| f64::from(s) / 32768.0).collect())
            }
            ChannelData::Delta { base, bits, deltas } => {
                let words = channel.size_bits().div_ceil(16);
                let _ = bits;
                stats.memory_words_read += words;
                stats.output_samples += deltas.len() + 1;
                stats.cycles += (deltas.len() + 1) as u64;
                let mut acc = i32::from(*base);
                let mut out = Vec::with_capacity(deltas.len() + 1);
                out.push(f64::from(acc) / 32768.0);
                for &d in deltas {
                    acc += i32::from(d);
                    out.push(f64::from(acc as i16) / 32768.0);
                }
                Ok(out)
            }
            ChannelData::Windows(windows) => {
                let decoder = RleDecoder::new();
                let mut out: Vec<f64> = Vec::with_capacity(n_samples);
                for words in windows {
                    let window = self.effective_window(windows.len(), n_samples);
                    stats.memory_words_read += words.len();
                    stats.rle_codewords +=
                        words.iter().filter(|w| matches!(w, CodedWord::Rle(_))).count();
                    let coeffs = decoder.decode_window(words, window)?;
                    let samples = self.inverse(&coeffs, window);
                    stats.idct_windows += 1;
                    stats.cycles += words.len() as u64 + 1;
                    out.extend_from_slice(&samples);
                }
                stats.output_samples += n_samples.min(out.len());
                out.truncate(n_samples);
                Ok(out)
            }
        }
    }

    /// Window length for this stream: fixed for windowed variants, the
    /// padded waveform length for `DCT-N`.
    fn effective_window(&self, n_windows: usize, n_samples: usize) -> usize {
        if self.window > 0 {
            self.window
        } else {
            debug_assert_eq!(n_windows, 1, "DCT-N stores exactly one window");
            n_samples
        }
    }

    fn inverse(&self, coeffs: &[i32], window: usize) -> Vec<f64> {
        match &self.stage {
            InverseStage::Integer(t) => {
                // Undo the storage headroom shift (the lost LSBs are part
                // of the measured quantization error).
                let native: Vec<i32> =
                    coeffs.iter().map(|&c| c << crate::compress::INT_STORE_SHIFT).collect();
                t.inverse_f64(&native)
            }
            InverseStage::Float { dct, scale } => {
                let f: Vec<f64> = coeffs.iter().map(|&c| f64::from(c) / scale).collect();
                dct.inverse(&f)
            }
            InverseStage::None => {
                // DCT-N: O(N log N) inverse at the waveform's full length.
                let scale = f64::from(1u32 << crate::compress::float_coeff_scale_bits(window));
                let f: Vec<f64> = coeffs.iter().map(|&c| f64::from(c) / scale).collect();
                compaqt_dsp::fastdct::fast_dct3(&f)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compress::Compressor;
    use compaqt_pulse::shapes::{Drag, GaussianSquare, PulseShape};

    fn x_pulse() -> Waveform {
        Drag::new(136, 0.5, 34.0, 0.2).to_waveform("X(q0)", 4.54)
    }

    #[test]
    fn engine_matches_compressor_expectation() {
        let wf = x_pulse();
        let z = Compressor::new(Variant::IntDctW { ws: 16 }).compress(&wf).unwrap();
        let engine = DecompressionEngine::for_variant(z.variant).unwrap();
        let (restored, stats) = engine.decompress(&z).unwrap();
        assert!(wf.mse(&restored) < 1e-4);
        assert_eq!(stats.output_samples, 136 * 2);
        assert_eq!(stats.memory_words_read, z.words());
    }

    #[test]
    fn bandwidth_expansion_exceeds_4x_for_smooth_pulses() {
        let wf = GaussianSquare::new(1362, 0.3, 40.0, 1020).to_waveform("CR", 4.54);
        let z = Compressor::new(Variant::IntDctW { ws: 16 }).compress(&wf).unwrap();
        let engine = DecompressionEngine::for_variant(z.variant).unwrap();
        let (_, stats) = engine.decompress(&z).unwrap();
        assert!(
            stats.bandwidth_expansion() > 4.0,
            "expansion {}",
            stats.bandwidth_expansion()
        );
    }

    #[test]
    fn idct_invocations_match_window_count() {
        let wf = x_pulse(); // 136 samples -> 9 windows of 16 per channel
        let z = Compressor::new(Variant::IntDctW { ws: 16 }).compress(&wf).unwrap();
        let engine = DecompressionEngine::for_variant(z.variant).unwrap();
        let (_, stats) = engine.decompress(&z).unwrap();
        assert_eq!(stats.idct_windows, 9 * 2);
    }

    #[test]
    fn delta_channel_decodes_without_idct() {
        let wf = compaqt_pulse::shapes::Gaussian::new(100, 0.5, 25.0).to_waveform("G", 4.54);
        let z = Compressor::new(Variant::Delta).compress(&wf).unwrap();
        let engine = DecompressionEngine::for_variant(Variant::Delta).unwrap();
        let (restored, stats) = engine.decompress(&z).unwrap();
        assert_eq!(stats.idct_windows, 0);
        assert!(wf.mse(&restored) < 1e-9);
    }

    #[test]
    fn stats_merge_adds_fields() {
        let mut a = EngineStats {
            memory_words_read: 1,
            rle_codewords: 2,
            idct_windows: 3,
            bypassed_samples: 4,
            output_samples: 5,
            cycles: 6,
        };
        a.merge(&a.clone());
        assert_eq!(a.memory_words_read, 2);
        assert_eq!(a.cycles, 12);
    }

    #[test]
    fn rejects_unsupported_window() {
        assert!(DecompressionEngine::for_variant(Variant::IntDctW { ws: 10 }).is_err());
    }

    #[test]
    fn malformed_stream_is_an_error_not_a_panic() {
        use compaqt_dsp::rle::{CodedWord, RleCodeword};
        // A window claiming a 100-sample zero run inside a 16-sample
        // window must be rejected (bit-flip / corruption robustness).
        let bogus = crate::compress::ChannelData::Windows(vec![vec![
            CodedWord::Coeff(5),
            CodedWord::Rle(RleCodeword { run: 100, repeat_previous: false }),
        ]]);
        let engine = DecompressionEngine::for_variant(Variant::IntDctW { ws: 16 }).unwrap();
        let mut stats = EngineStats::default();
        let err = engine.decode_channel(&bogus, 16, &mut stats).unwrap_err();
        assert!(matches!(err, crate::CompressError::Rle(_)));
    }

    #[test]
    fn dct_n_engine_round_trips_long_waveforms() {
        let wf = GaussianSquare::new(1362, 0.3, 40.0, 1020).to_waveform("CR", 4.54);
        let z = Compressor::new(Variant::DctN).compress(&wf).unwrap();
        let engine = DecompressionEngine::for_variant(Variant::DctN).unwrap();
        let (restored, stats) = engine.decompress(&z).unwrap();
        assert!(wf.mse(&restored) < 1e-4, "mse {:e}", wf.mse(&restored));
        assert_eq!(stats.idct_windows, 2, "one full-length window per channel");
        assert!(stats.bandwidth_expansion() > 10.0);
    }
}
