//! A sharded concurrent compressed-waveform store: the serving path.
//!
//! The paper's deployment model is that compressed pulse libraries are
//! *served* at runtime: control hardware fetches **one gate's** waveform
//! and decompresses it on the fly — it never inflates the whole library
//! (Section IV-A). The batch paths in [`crate::batch`] model the
//! compile-time side (whole-library encode/decode); this module models
//! the runtime side: many concurrent readers, single-gate granularity,
//! zero steady-state allocation.
//!
//! # Architecture
//!
//! A [`Store`] maps [`GateId`] → [`CompressedWaveform`] across a fixed
//! power-of-two number of shards, each behind its own
//! `parking_lot::RwLock`. Reads on different gates proceed fully in
//! parallel; a write (calibration updating one gate) briefly excludes
//! readers of **one shard only**. Gates are routed to shards by
//! [`GateId::stable_hash`], so the layout is identical on every run.
//!
//! Three more pieces make the fetch path cheap:
//!
//! * **Scratch pool** — decoding needs a [`DecodeScratch`]; the store
//!   keeps a bounded pool (checkout → decode → check in), so N reader
//!   threads decode with at most N scratches ever built and **zero heap
//!   allocations** per steady-state [`Store::fetch_into`] (enforced in
//!   the `alloc_regression` integration test).
//! * **Hot set** — a bounded LRU of *decoded* waveforms, globally
//!   budgeted by [`StoreConfig::hot_capacity`] (an honest store-wide
//!   bound: `hot_len() <= hot_capacity` always, however unevenly the
//!   gates hash). [`Store::fetch_cached`] returns an `Arc<Waveform>`
//!   clone on a hit, skipping the RLE + IDCT entirely — the win for
//!   calibration-critical gates fetched over and over. Each shard's
//!   hot set is an immutable snapshot published through an RCU-style
//!   [`ArcSwap`], so a **hit takes no lock at all** — not even the
//!   shard's read lock — and a queued recalibration writer can never
//!   stall the hit path. Mutations (parking a miss, eviction,
//!   invalidation) rebuild the snapshot under the shard's write lock
//!   and publish it atomically. Recency is an atomic stamp per entry
//!   shared *across* snapshots (entries are `Arc`ed), so hits keep
//!   LRU order exact without ever writing to the snapshot itself; the
//!   recency clock and fetch counters are shard-local, so readers on
//!   different shards share no atomic cache line at all.
//! * **Engine registry** — one shared [`DecompressionEngine`] per
//!   variant, built at insert time, shared `&self` by all readers.
//!
//! # `fetch_into` vs `fetch_cached`
//!
//! [`Store::fetch_into`] always decodes, into caller-owned buffers: the
//! right call when the caller streams samples onward (DAC staging) and
//! wants deterministic latency and zero allocation. [`Store::fetch_cached`]
//! amortizes: the first fetch decodes and parks an `Arc<Waveform>` in the
//! hot set; repeats are a lock-free snapshot lookup + refcount bump. Use
//! it for skewed traffic (a few gates dominating fetches); size
//! [`StoreConfig::hot_capacity`] to that working set.
//!
//! # Example
//!
//! ```
//! use compaqt_core::compress::{Compressor, Variant};
//! use compaqt_core::store::Store;
//! use compaqt_pulse::device::Device;
//! use compaqt_pulse::vendor::Vendor;
//!
//! let lib = Device::synthesize(Vendor::Ibm, 2, 0x51E).pulse_library();
//! let compressor = Compressor::new(Variant::IntDctW { ws: 16 });
//! let store = Store::from_library(&lib, &compressor)?;
//!
//! let (gate, wf) = lib.iter().next().unwrap();
//! // Zero-allocation streaming fetch into reusable buffers...
//! let (mut i, mut q) = (Vec::new(), Vec::new());
//! store.fetch_into(gate, &mut i, &mut q)?;
//! assert_eq!(i.len(), wf.len());
//! // ...or a cached fetch that skips the IDCT on repeats.
//! let first = store.fetch_cached(gate)?;
//! let again = store.fetch_cached(gate)?;
//! assert_eq!(first.i(), again.i());
//! assert_eq!(store.stats().hot_hits, 1);
//! # Ok::<(), compaqt_core::store::StoreError>(())
//! ```

use crate::compress::{CompressedWaveform, Compressor, Variant};
use crate::engine::{DecodeScratch, DecompressionEngine, EncodeScratch, EngineStats};
use crate::CompressError;
use arc_swap::ArcSwap;
use compaqt_obs::{Collect, Histogram, Snapshot, TraceKind, TraceRing};
use compaqt_pulse::library::{GateId, PulseLibrary};
use compaqt_pulse::waveform::Waveform;
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Sizing knobs for a [`Store`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreConfig {
    /// Number of shards. **Silently rounded up** to the next power of
    /// two, minimum 1 (so `shards: 5` builds an 8-shard store) — shard
    /// routing is a mask over [`GateId::stable_hash`], which requires a
    /// power-of-two count. The effective value is observable via
    /// [`Store::shard_count`], and the rounding is pinned by test so a
    /// refactor cannot change it (that would silently reshuffle every
    /// gate's shard). More shards = less writer/reader contention,
    /// slightly more memory.
    pub shards: usize,
    /// Total decoded waveforms kept hot across **all** shards — an
    /// honest global bound: `Store::hot_len() <= hot_capacity` holds at
    /// all times, however unevenly the gates hash (a fully skewed
    /// working set may occupy the entire budget inside one shard). `0`
    /// disables the hot set: [`Store::fetch_cached`] then decodes on
    /// every call.
    pub hot_capacity: usize,
    /// Opt-in per-codec-variant latency histograms (and encode timing
    /// in [`Store::from_library_with`]). Off by default: the aggregate
    /// decode histograms are always on (they reuse the timings the
    /// fetch paths already take for [`StoreStats::decode_ns`]), but the
    /// per-variant breakdown costs one extra engine-table lookup per
    /// decode, so it is gated. Never affects the lock-free
    /// [`Store::fetch_cached`] hit path, which records nothing.
    pub codec_metrics: bool,
}

impl Default for StoreConfig {
    /// 16 shards, 64 hot waveforms: comfortable for a ~100-qubit
    /// machine's calibration-critical working set. Per-variant codec
    /// metrics are off.
    fn default() -> Self {
        StoreConfig { shards: 16, hot_capacity: 64, codec_metrics: false }
    }
}

/// Errors from the serving path.
#[derive(Debug, Clone, PartialEq)]
pub enum StoreError {
    /// The store holds no waveform for the requested gate.
    UnknownGate(GateId),
    /// The stored stream failed to decode (or an insert was rejected).
    Codec(CompressError),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::UnknownGate(id) => write!(f, "store holds no waveform for gate {id}"),
            StoreError::Codec(e) => write!(f, "stored stream failed to decode: {e}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Codec(e) => Some(e),
            StoreError::UnknownGate(_) => None,
        }
    }
}

impl From<CompressError> for StoreError {
    fn from(e: CompressError) -> Self {
        StoreError::Codec(e)
    }
}

/// A point-in-time snapshot of the store's fetch counters.
///
/// Counters are process-lifetime monotonic (never reset by fetches);
/// sample twice and subtract to rate-measure a window.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Successful fetches, both kinds.
    pub fetches: u64,
    /// [`Store::fetch_cached`] calls served from the hot set (no IDCT).
    pub hot_hits: u64,
    /// [`Store::fetch_cached`] calls that had to decode.
    pub hot_misses: u64,
    /// Decodes performed (every `fetch_into` plus every hot miss).
    pub decodes: u64,
    /// Wall nanoseconds spent inside the decompression engine.
    pub decode_ns: u64,
    /// Hot-set entries dropped by [`Store::invalidate`] / re-inserts.
    pub invalidations: u64,
}

impl StoreStats {
    /// Hot-set hit rate over all `fetch_cached` calls so far (0 when
    /// none were made).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hot_hits + self.hot_misses;
        if total == 0 {
            0.0
        } else {
            self.hot_hits as f64 / total as f64
        }
    }
}

/// Internal atomic counters behind [`StoreStats`] — one set per shard
/// (summed by [`Store::stats`]), so fetches on different shards never
/// contend on a shared counter cache line.
#[derive(Debug, Default)]
struct Counters {
    fetches: AtomicU64,
    hot_hits: AtomicU64,
    hot_misses: AtomicU64,
    decodes: AtomicU64,
    decode_ns: AtomicU64,
    invalidations: AtomicU64,
}

/// Telemetry sidecar of a [`Store`]: log2 latency histograms fed
/// exclusively from timings the fetch paths already take for
/// [`StoreStats::decode_ns`] — instrumentation adds **no** extra clock
/// reads to any fetch path, and nothing at all to the lock-free
/// [`Store::fetch_cached`] hit path. Recording is a single relaxed
/// atomic add; reading happens only in [`Store::collect_obs`].
#[derive(Debug, Default)]
struct StoreMetrics {
    /// Streaming-decode latency: one sample per [`Store::fetch_into`]
    /// call and one per locked shard batch of [`Store::fetch_many`]
    /// (mirroring how [`StoreStats::decode_ns`] books wall time).
    decode_ns: Histogram,
    /// [`Store::fetch_cached`] **miss** decode latency; hits record
    /// nothing by design.
    miss_decode_ns: Histogram,
    /// Library-encode latency per waveform, populated by
    /// [`Store::from_library_with`] when [`StoreConfig::codec_metrics`]
    /// is set.
    encode_ns: Histogram,
    /// Per-variant decode latency (single-gate paths only — a batch
    /// sample spans variants), populated when
    /// [`StoreConfig::codec_metrics`] is set. Grows by at most one row
    /// per variant ever decoded; rows are recorded under the read lock,
    /// so steady state never allocates.
    variant_decode_ns: RwLock<Vec<(Variant, Histogram)>>,
}

/// Metric-name suffix for a codec variant: lowercase, `[a-z0-9_]` only,
/// so exposition names need no sanitizing.
fn variant_metric_suffix(v: Variant) -> String {
    match v {
        Variant::Delta => "delta".to_string(),
        Variant::DctN => "dct_n".to_string(),
        Variant::DctW { ws } => format!("dct_w{ws}"),
        Variant::IntDctW { ws } => format!("int_dct_w{ws}"),
    }
}

/// One decoded waveform parked in a shard's hot set.
#[derive(Debug)]
struct HotEntry {
    id: GateId,
    decoded: Arc<Waveform>,
    /// Recency stamp from the shard clock; atomic so lock-free cache
    /// *hits* can bump it, and `Arc`-shared across snapshot rebuilds
    /// so no bump is ever lost to a concurrent republication.
    last_used: AtomicU64,
}

/// One immutable generation of a shard's hot set, published through
/// [`ShardSlot::hot`]. Readers clone `Arc<HotEntry>` handles out of
/// whichever generation they loaded; writers never mutate a published
/// set — they build a new one (reusing the entry `Arc`s) and swap it
/// in, so the hit path needs no lock and no retry loop.
#[derive(Debug, Default)]
struct HotSet {
    entries: Vec<Arc<HotEntry>>,
}

/// One stored stream plus the shard generation it was inserted at.
///
/// The generation is what makes the hot set safe against recalibration
/// races: a cached-fetch miss decodes outside the locks, and may only
/// park its result if the gate's generation is still the one it read —
/// a concurrent [`Store::insert`] bumps it, so a stale decode can never
/// enter the hot set after the insert returned.
#[derive(Debug)]
struct StoredEntry {
    gen: u64,
    z: CompressedWaveform,
}

/// One shard: the compressed map and its generation counter. The hot
/// set lives outside the lock (see [`ShardSlot::hot`]).
#[derive(Debug, Default)]
struct Shard {
    map: HashMap<GateId, StoredEntry>,
    /// Monotonic insert counter; source of [`StoredEntry::gen`].
    next_gen: u64,
}

/// One shard slot: the locked shard state plus its contention-free
/// sidecars. The hot set, recency clock and fetch counters deliberately
/// live *outside* the lock and *per shard*: hot hits then touch only
/// shard-local cache lines and take no lock, so readers hammering
/// different shards never serialize on a store-wide atomic — and
/// readers hammering the *same* shard never serialize on its lock
/// either. (A shard-local clock is exact — LRU eviction only ever
/// compares entries of the same shard.)
///
/// Publication discipline: `hot` is only ever `store`d while holding
/// `state`'s **write** lock. That makes the write lock the total order
/// on snapshot generations (no lost updates from racing rebuilds),
/// while loads stay lock-free.
#[derive(Debug, Default)]
struct ShardSlot {
    state: RwLock<Shard>,
    /// This shard's hot-set snapshot; see the publication discipline
    /// above.
    hot: ArcSwap<HotSet>,
    /// This shard's recency clock.
    clock: AtomicU64,
    /// This shard's fetch counters; [`Store::stats`] sums across shards.
    counters: Counters,
}

impl ShardSlot {
    /// Next recency stamp for this shard.
    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }
}

/// A sharded concurrent `GateId → CompressedWaveform` store with pooled
/// decode scratch and a bounded hot set of decoded waveforms.
///
/// All methods take `&self`: the store is meant to sit in an `Arc` and
/// be shared by reader and writer threads alike. See the [module
/// docs](self) for the architecture and the fetch-path guarantees.
#[derive(Debug)]
pub struct Store {
    shards: Vec<ShardSlot>,
    /// `shards.len() - 1`; shard count is a power of two.
    shard_mask: u64,
    /// Global hot-set budget (0 disables caching).
    hot_capacity: usize,
    /// Hot-budget slots in use: parked entries plus in-flight
    /// reservations. Reservation happens *before* a miss parks its
    /// decode, so parked entries can never exceed `hot_capacity`.
    hot_count: AtomicUsize,
    /// One shared engine per variant seen at insert time.
    engines: RwLock<Vec<(Variant, DecompressionEngine)>>,
    /// Bounded checkout pool of decode scratches.
    scratches: Mutex<Vec<DecodeScratch>>,
    /// Upper bound on parked scratches (pool pre-allocated to this).
    scratch_bound: usize,
    /// Whether per-variant codec histograms are recorded.
    codec_metrics: bool,
    /// Latency histograms; see [`StoreMetrics`] for the feeding rules.
    metrics: StoreMetrics,
    /// Optional event ring ([`Store::attach_trace`]); checked with one
    /// atomic load on the cold paths that emit events (insert-replace,
    /// eviction) — never on a fetch.
    trace: OnceLock<Arc<TraceRing>>,
}

impl Default for Store {
    fn default() -> Self {
        Store::new(StoreConfig::default())
    }
}

impl Store {
    /// Creates an empty store with the given sizing.
    pub fn new(config: StoreConfig) -> Self {
        let n_shards = config.shards.max(1).next_power_of_two();
        let shards = (0..n_shards)
            .map(|_| ShardSlot {
                state: RwLock::new(Shard { map: HashMap::new(), next_gen: 0 }),
                // Snapshots grow on demand: any single shard may hold
                // up to the whole global budget under skewed hashing,
                // so pre-sizing every shard to it would waste memory.
                hot: ArcSwap::from_pointee(HotSet::default()),
                clock: AtomicU64::new(0),
                counters: Counters::default(),
            })
            .collect();
        let scratch_bound = n_shards.max(8);
        Store {
            shards,
            shard_mask: (n_shards - 1) as u64,
            hot_capacity: config.hot_capacity,
            hot_count: AtomicUsize::new(0),
            engines: RwLock::new(Vec::new()),
            scratches: Mutex::new(Vec::with_capacity(scratch_bound)),
            scratch_bound,
            codec_metrics: config.codec_metrics,
            metrics: StoreMetrics::default(),
            trace: OnceLock::new(),
        }
    }

    /// Compresses every waveform of a library into a new store with the
    /// default sizing, reusing one [`EncodeScratch`] across the whole
    /// pass (the zero-allocation encode path).
    ///
    /// # Errors
    ///
    /// Propagates the first compression error (none occur for supported
    /// window sizes).
    pub fn from_library(
        library: &PulseLibrary,
        compressor: &Compressor,
    ) -> Result<Self, CompressError> {
        Store::from_library_with(library, compressor, StoreConfig::default())
    }

    /// [`Store::from_library`] with explicit sizing.
    ///
    /// # Errors
    ///
    /// Propagates the first compression error.
    pub fn from_library_with(
        library: &PulseLibrary,
        compressor: &Compressor,
        config: StoreConfig,
    ) -> Result<Self, CompressError> {
        let store = Store::new(config);
        let mut enc = EncodeScratch::new();
        for (gate, wf) in library.iter() {
            let mut z = CompressedWaveform::empty();
            let started = config.codec_metrics.then(Instant::now);
            compressor.compress_into(wf, &mut enc, &mut z)?;
            if let Some(t) = started {
                store.metrics.encode_ns.record(t.elapsed().as_nanos() as u64);
            }
            store.insert(gate.clone(), z)?;
        }
        Ok(store)
    }

    /// Builds a store from already-compressed `(gate, stream)` pairs,
    /// moving the streams in (no re-encode, no clone) — the bridge from
    /// a compile-side [`crate::stats::LibraryReport`] to the serving
    /// path (see [`crate::stats::LibraryReport::into_store`]).
    ///
    /// # Errors
    ///
    /// Returns [`CompressError::UnsupportedWindow`] if a stream carries
    /// a variant no engine can be built for.
    pub fn from_entries<I>(entries: I, config: StoreConfig) -> Result<Self, CompressError>
    where
        I: IntoIterator<Item = (GateId, CompressedWaveform)>,
    {
        let store = Store::new(config);
        for (gate, z) in entries {
            store.insert(gate, z)?;
        }
        Ok(store)
    }

    /// Inserts (or replaces) the compressed waveform for a gate and
    /// drops any stale hot-set copy, so no reader can observe the old
    /// decode after the insert returns. Concurrent readers of *other*
    /// gates in the same shard are blocked only for the map write.
    ///
    /// # Errors
    ///
    /// Returns [`CompressError::UnsupportedWindow`] if the stream's
    /// variant has no valid decompression engine; the store is
    /// unchanged in that case.
    pub fn insert(&self, id: GateId, z: CompressedWaveform) -> Result<(), CompressError> {
        // Register the engine before the entry becomes visible: any
        // reader that can see the stream can also decode it. (Engine and
        // shard locks are never held together, in either order.)
        self.ensure_engine(z.variant)?;
        let home = self.shard_index(&id);
        let slot = &self.shards[home];
        let mut shard = slot.state.write();
        self.drop_hot(slot, &mut shard, &id);
        // The generation bump is what keeps a concurrent cached-fetch
        // miss (decoding the *old* stream outside the locks right now)
        // from parking its stale result after we return.
        shard.next_gen += 1;
        let gen = shard.next_gen;
        let replaced = shard.map.insert(id, StoredEntry { gen, z }).is_some();
        drop(shard);
        if replaced {
            // A replacement is a recalibration publish; initial loads
            // are not traced (they would drown the ring at store build).
            self.trace_event(TraceKind::RecalibrationPublish, home as u64, gen);
        }
        Ok(())
    }

    /// Decodes one gate's waveform into caller-owned buffers (cleared
    /// and refilled), returning the engine's operation counts.
    ///
    /// This is the streaming fetch: it always runs the decoder, through
    /// a pooled [`DecodeScratch`] — with reused output buffers the
    /// steady-state call performs **zero heap allocations**. That
    /// guarantee is why the decode runs under the shard's *read* lock
    /// (copying the stream out first would allocate): concurrent
    /// fetches of any gate proceed, but note the stub lock is
    /// `std`-backed and writer-favoring, so a queued [`Store::insert`]
    /// on the same shard makes *new* fetches of that shard wait for the
    /// in-flight decodes to finish. Writes are rare (end of a
    /// calibration cycle), so this is the right trade for the serving
    /// loop.
    ///
    /// # Errors
    ///
    /// [`StoreError::UnknownGate`] if the gate is absent;
    /// [`StoreError::Codec`] if the stored stream is malformed.
    pub fn fetch_into(
        &self,
        id: &GateId,
        i_out: &mut Vec<f64>,
        q_out: &mut Vec<f64>,
    ) -> Result<EngineStats, StoreError> {
        let slot = &self.shards[self.shard_index(id)];
        let shard = slot.state.read();
        let entry = shard.map.get(id).ok_or_else(|| StoreError::UnknownGate(id.clone()))?;
        let z = &entry.z;
        let mut scratch = self.checkout();
        let started = Instant::now();
        let result = self
            .with_engine(z.variant, |engine| engine.decompress_into(z, &mut scratch, i_out, q_out));
        let elapsed = started.elapsed().as_nanos() as u64;
        self.checkin(scratch);
        let stats = result?;
        slot.counters.decodes.fetch_add(1, Ordering::Relaxed);
        slot.counters.decode_ns.fetch_add(elapsed, Ordering::Relaxed);
        slot.counters.fetches.fetch_add(1, Ordering::Relaxed);
        self.metrics.decode_ns.record(elapsed);
        self.record_variant_ns(z.variant, elapsed);
        Ok(stats)
    }

    /// Decodes a batch of gates into per-gate caller-owned buffer pairs
    /// (`outs[k]` receives gate `ids[k]`), returning the merged engine
    /// stats.
    ///
    /// The batch is grouped by shard: each shard's read lock is
    /// acquired **once per batch** and every batch gate living there is
    /// decoded under it, instead of one acquire/release per gate as a
    /// `fetch_into` loop pays — the right call when a schedule hands
    /// the controller a whole gate list at once. One pooled scratch
    /// serves the entire batch, so with reused output buffers the
    /// steady-state call performs zero heap allocations (enforced in
    /// the `alloc_regression` integration test), and the result is
    /// bit-exact with per-gate [`Store::fetch_into`] calls.
    ///
    /// # Errors
    ///
    /// [`StoreError::UnknownGate`] on the first absent gate,
    /// [`StoreError::Codec`] on the first malformed stream. On error,
    /// buffers decoded before the failure keep their samples and the
    /// rest are untouched — treat `outs` as unspecified.
    ///
    /// # Panics
    ///
    /// Panics if `ids` and `outs` have different lengths.
    pub fn fetch_many(
        &self,
        ids: &[GateId],
        outs: &mut [(Vec<f64>, Vec<f64>)],
    ) -> Result<EngineStats, StoreError> {
        assert_eq!(ids.len(), outs.len(), "one output buffer pair per requested gate");
        let mut scratch = self.checkout();
        let result = self.fetch_many_with(ids, outs, &mut scratch);
        self.checkin(scratch);
        result
    }

    /// Shard-grouped batch decode through a caller-held scratch; the
    /// locked inner loop of [`Store::fetch_many`].
    fn fetch_many_with(
        &self,
        ids: &[GateId],
        outs: &mut [(Vec<f64>, Vec<f64>)],
        scratch: &mut DecodeScratch,
    ) -> Result<EngineStats, StoreError> {
        let mut merged = EngineStats::default();
        for (s, slot) in self.shards.iter().enumerate() {
            // One routing hash per (shard, gate); the shard lock is
            // taken lazily on the first gate that routes here, so
            // shards the batch never touches are never locked.
            let mut shard = None;
            let mut decoded = 0u64;
            let result = ids
                .iter()
                .zip(outs.iter_mut())
                .filter(|(id, _)| self.shard_index(id) == s)
                .try_for_each(|(id, (i_out, q_out))| {
                    let (shard, _) =
                        shard.get_or_insert_with(|| (slot.state.read(), Instant::now()));
                    let entry =
                        shard.map.get(id).ok_or_else(|| StoreError::UnknownGate(id.clone()))?;
                    let z = &entry.z;
                    let stats = self.with_engine(z.variant, |engine| {
                        engine.decompress_into(z, scratch, i_out, q_out)
                    })?;
                    merged.merge(&stats);
                    decoded += 1;
                    Ok::<(), StoreError>(())
                });
            // Exactly one fetches/decodes increment per gate decoded in
            // this shard — never per lock acquisition. A shard whose
            // only routed gates were unknown took the lock but decoded
            // nothing, and must not book time or counts for it.
            if decoded > 0 {
                let (_guard, started) = shard.as_ref().expect("decoded gates imply a locked shard");
                let elapsed = started.elapsed().as_nanos() as u64;
                slot.counters.decodes.fetch_add(decoded, Ordering::Relaxed);
                slot.counters.fetches.fetch_add(decoded, Ordering::Relaxed);
                slot.counters.decode_ns.fetch_add(elapsed, Ordering::Relaxed);
                // One histogram sample per locked shard batch (the
                // measured span); a batch crosses variants, so the
                // per-variant breakdown only covers single-gate paths.
                self.metrics.decode_ns.record(elapsed);
            }
            result?;
        }
        Ok(merged)
    }

    /// Fetches one gate's decoded waveform through the hot set.
    ///
    /// A hit is **lock-free**: one atomic snapshot load, a scan, a
    /// recency-stamp store and an `Arc` refcount bump — the IDCT is
    /// skipped entirely and the shard lock is never touched, so a
    /// queued recalibration writer cannot stall hits (enforced as a
    /// zero-allocation, no-lock path by the `alloc_regression` and
    /// `store_concurrency` integration tests). A miss snapshots the
    /// compressed stream (one clone, under the shard's read lock),
    /// decodes it **outside every lock** (pooled scratch), parks the
    /// result in its shard's hot set and returns it. Parking first
    /// reserves a slot of the **global** [`StoreConfig::hot_capacity`]
    /// budget, evicting the least recently used entry (home shard
    /// preferred) when the budget is exhausted — so `hot_len()` never
    /// exceeds `hot_capacity`, and a working set skewed onto one shard
    /// still gets the whole budget. The park is generation-checked: if
    /// the gate was recalibrated while the miss was decoding, the
    /// now-stale decode is returned to its caller (it was the truth
    /// when the fetch started) but never cached, so [`Store::insert`]'s
    /// no-stale-reads guarantee holds: a `fetch_cached` that *begins*
    /// after an `insert` returns can only observe the new calibration.
    ///
    /// # Errors
    ///
    /// [`StoreError::UnknownGate`] if the gate is absent;
    /// [`StoreError::Codec`] if the stored stream is malformed.
    pub fn fetch_cached(&self, id: &GateId) -> Result<Arc<Waveform>, StoreError> {
        let home = self.shard_index(id);
        let slot = &self.shards[home];
        // Fast path: lock-free snapshot load, shard-local recency bump
        // and counters, refcount clone. Inserts publish a rebuilt
        // snapshot before they return, so a hit here is never stale.
        let snapshot = slot.hot.load_full();
        if let Some(entry) = snapshot.entries.iter().find(|e| &e.id == id) {
            entry.last_used.store(slot.tick(), Ordering::Relaxed);
            slot.counters.hot_hits.fetch_add(1, Ordering::Relaxed);
            slot.counters.fetches.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(&entry.decoded));
        }
        drop(snapshot);
        let (z, gen) = {
            let shard = slot.state.read();
            let entry = shard.map.get(id).ok_or_else(|| StoreError::UnknownGate(id.clone()))?;
            // Snapshot the stream so the (long) decode holds no lock: a
            // cold miss must not stall writers — or, through the
            // writer-favoring std-backed lock, other readers — of this
            // shard. One clone per miss; misses also allocate the
            // waveform itself, so this is not on the zero-alloc path.
            (entry.z.clone(), entry.gen)
        };
        let mut scratch = self.checkout();
        let (mut i, mut q) = (Vec::new(), Vec::new());
        let started = Instant::now();
        let result = self.with_engine(z.variant, |engine| {
            engine.decompress_into(&z, &mut scratch, &mut i, &mut q)
        });
        let elapsed = started.elapsed().as_nanos() as u64;
        self.checkin(scratch);
        result?;
        let decoded = Arc::new(crate::engine::checked_waveform(&z.name, i, q, z.sample_rate_gs)?);
        slot.counters.decodes.fetch_add(1, Ordering::Relaxed);
        slot.counters.decode_ns.fetch_add(elapsed, Ordering::Relaxed);
        slot.counters.hot_misses.fetch_add(1, Ordering::Relaxed);
        slot.counters.fetches.fetch_add(1, Ordering::Relaxed);
        self.metrics.miss_decode_ns.record(elapsed);
        self.record_variant_ns(z.variant, elapsed);
        if self.hot_capacity == 0 {
            return Ok(decoded);
        }
        // Park the decode: reserve a global hot-budget slot *before*
        // taking the home shard's write lock (eviction may lock any one
        // shard, and no two shard locks are ever held together).
        self.reserve_hot_slot(home);
        let shard = slot.state.write();
        // Another reader may have raced us here; keep the first entry
        // so every caller converges on one shared decode. (The write
        // lock pins the current snapshot: nobody else can publish while
        // we hold it.)
        let current = slot.hot.load_full();
        if let Some(entry) = current.entries.iter().find(|e| &e.id == id) {
            entry.last_used.store(slot.tick(), Ordering::Relaxed);
            let shared = Arc::clone(&entry.decoded);
            drop(shard);
            self.hot_count.fetch_sub(1, Ordering::Relaxed); // release unused reservation
            return Ok(shared);
        }
        // The gate may have been recalibrated (or removed) while we
        // were decoding; parking the old decode would then serve stale
        // samples until the next invalidation. The generation stamp
        // pins the exact stream we decoded.
        if shard.map.get(id).is_some_and(|e| e.gen == gen) {
            let mut entries = current.entries.clone();
            entries.push(Arc::new(HotEntry {
                id: id.clone(),
                decoded: Arc::clone(&decoded),
                last_used: AtomicU64::new(slot.tick()),
            }));
            slot.hot.store(Arc::new(HotSet { entries })); // consumes the reservation
        } else {
            drop(shard);
            self.hot_count.fetch_sub(1, Ordering::Relaxed); // release: stale decode, not parked
        }
        Ok(decoded)
    }

    /// Runs `f` with a borrow of one gate's **compressed** stream,
    /// under the shard's read lock — the wire-serving fetch path: a
    /// network tier serializes the stream straight out of the shard
    /// with no clone and no decode (the *client* decompresses, which
    /// is the paper's deployment model). Nothing is decoded, so the
    /// fetch counters are untouched; concurrent readers of the shard
    /// proceed, and `f` should return quickly (it holds the lock).
    ///
    /// # Errors
    ///
    /// [`StoreError::UnknownGate`] if the gate is absent.
    pub fn with_stream<R>(
        &self,
        id: &GateId,
        f: impl FnOnce(&CompressedWaveform) -> R,
    ) -> Result<R, StoreError> {
        let slot = &self.shards[self.shard_index(id)];
        let shard = slot.state.read();
        let entry = shard.map.get(id).ok_or_else(|| StoreError::UnknownGate(id.clone()))?;
        Ok(f(&entry.z))
    }

    /// Drops the hot-set copy of one gate (the compressed stream stays).
    /// Returns `true` if a decoded copy was parked. Call after mutating
    /// anything a cached decode depends on; [`Store::insert`] does this
    /// automatically.
    pub fn invalidate(&self, id: &GateId) -> bool {
        let slot = &self.shards[self.shard_index(id)];
        let mut shard = slot.state.write();
        self.drop_hot(slot, &mut shard, id)
    }

    /// Removes a gate entirely (compressed stream and hot copy),
    /// returning the stream if it was present.
    pub fn remove(&self, id: &GateId) -> Option<CompressedWaveform> {
        let slot = &self.shards[self.shard_index(id)];
        let mut shard = slot.state.write();
        self.drop_hot(slot, &mut shard, id);
        shard.map.remove(id).map(|e| e.z)
    }

    /// Drops the hot-set copy of `id` by publishing a rebuilt snapshot
    /// without it, counting the invalidation and releasing the entry's
    /// global hot-budget slot. The `_shard` write guard is the
    /// publication witness (snapshots may only be stored under the
    /// shard's write lock). The single removal-accounting site shared
    /// by insert/invalidate/remove.
    fn drop_hot(&self, slot: &ShardSlot, _shard: &mut Shard, id: &GateId) -> bool {
        let current = slot.hot.load_full();
        if let Some(pos) = current.entries.iter().position(|e| &e.id == id) {
            let mut entries = current.entries.clone();
            entries.swap_remove(pos);
            slot.hot.store(Arc::new(HotSet { entries }));
            self.hot_count.fetch_sub(1, Ordering::Relaxed);
            slot.counters.invalidations.fetch_add(1, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// Reserves one slot of the global hot budget, evicting if it is
    /// exhausted. Must be called with **no shard lock held** (eviction
    /// takes one shard write lock at a time, never two), and every
    /// reservation must later be either consumed by a `hot.push` or
    /// released with a `hot_count` decrement.
    fn reserve_hot_slot(&self, home: usize) {
        loop {
            let used = self.hot_count.load(Ordering::Relaxed);
            if used < self.hot_capacity {
                if self
                    .hot_count
                    .compare_exchange(used, used + 1, Ordering::Relaxed, Ordering::Relaxed)
                    .is_ok()
                {
                    return;
                }
                continue; // lost a reservation race; retry
            }
            // Budget exhausted: make room. Evicting from the home shard
            // first means a skewed working set behaves like one LRU over
            // the full budget instead of thrashing a per-shard slice;
            // other shards are scanned round-robin only when the home
            // shard has nothing parked. (Per-shard recency clocks are
            // not cross-comparable, so the cross-shard victim choice is
            // positional; eviction is LRU *within* the victim shard.)
            // Finding nothing is possible when every budget slot is an
            // in-flight reservation about to park — loop until one
            // parks (evictable) or is released (budget frees up).
            self.evict_one(home);
        }
    }

    /// Evicts the least recently used entry of the first shard, scanning
    /// from `home`, that has anything parked. Returns `false` if every
    /// hot set was empty.
    fn evict_one(&self, home: usize) -> bool {
        let n = self.shards.len();
        for k in 0..n {
            let slot = &self.shards[(home + k) % n];
            // The write lock is the publication witness: it pins the
            // current snapshot while the victim is chosen and the
            // rebuilt set is stored.
            let _shard = slot.state.write();
            let current = slot.hot.load_full();
            let coldest = current
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_used.load(Ordering::Relaxed))
                .map(|(pos, _)| pos);
            if let Some(pos) = coldest {
                let mut entries = current.entries.clone();
                let remaining = entries.len() as u64 - 1;
                entries.swap_remove(pos);
                slot.hot.store(Arc::new(HotSet { entries }));
                self.hot_count.fetch_sub(1, Ordering::Relaxed);
                self.trace_event(TraceKind::HotEviction, ((home + k) % n) as u64, remaining);
                return true;
            }
        }
        false
    }

    /// A snapshot of the fetch counters, summed over all shards.
    pub fn stats(&self) -> StoreStats {
        let mut out = StoreStats::default();
        for slot in &self.shards {
            out.fetches += slot.counters.fetches.load(Ordering::Relaxed);
            out.hot_hits += slot.counters.hot_hits.load(Ordering::Relaxed);
            out.hot_misses += slot.counters.hot_misses.load(Ordering::Relaxed);
            out.decodes += slot.counters.decodes.load(Ordering::Relaxed);
            out.decode_ns += slot.counters.decode_ns.load(Ordering::Relaxed);
            out.invalidations += slot.counters.invalidations.load(Ordering::Relaxed);
        }
        out
    }

    /// Attaches a trace ring: cold store events (recalibration
    /// publishes over existing gates, hot-set evictions) are pushed to
    /// it from then on. First attach wins — returns `false` (ring
    /// dropped, existing one kept) if one is already attached. Fetches
    /// never emit events, so attaching costs the fetch paths nothing.
    pub fn attach_trace(&self, ring: Arc<TraceRing>) -> bool {
        self.trace.set(ring).is_ok()
    }

    /// The attached trace ring, if any.
    pub fn trace(&self) -> Option<&Arc<TraceRing>> {
        self.trace.get()
    }

    /// Pushes an event to the attached ring (one atomic load when none
    /// is attached).
    fn trace_event(&self, kind: TraceKind, a: u64, b: u64) {
        if let Some(ring) = self.trace.get() {
            ring.push(kind, a, b);
        }
    }

    /// Records a per-variant decode sample when
    /// [`StoreConfig::codec_metrics`] is on. The row is created on the
    /// variant's first decode (one allocation, write lock); every later
    /// sample finds it under the read lock and records with a single
    /// relaxed atomic add — steady state stays allocation-free.
    fn record_variant_ns(&self, variant: Variant, ns: u64) {
        if !self.codec_metrics {
            return;
        }
        {
            let table = self.metrics.variant_decode_ns.read();
            if let Some((_, h)) = table.iter().find(|(v, _)| *v == variant) {
                h.record(ns);
                return;
            }
        }
        let mut table = self.metrics.variant_decode_ns.write();
        if !table.iter().any(|(v, _)| *v == variant) {
            table.push((variant, Histogram::new()));
        }
        if let Some((_, h)) = table.iter().find(|(v, _)| *v == variant) {
            h.record(ns);
        }
    }

    /// Contributes this store's telemetry to an observability snapshot:
    /// the [`StoreStats`] counters, occupancy gauges, the decode
    /// latency histograms, and (when [`StoreConfig::codec_metrics`] is
    /// on) the per-variant breakdown. Cold path — it takes shard read
    /// locks for the gauges and allocates freely; never call it from a
    /// fetch loop. Also available through the [`Collect`] trait for
    /// [`compaqt_obs::Registry::register_collector`].
    pub fn collect_obs(&self, out: &mut Snapshot) {
        let s = self.stats();
        out.push_counter("store_fetches", s.fetches);
        out.push_counter("store_hot_hits", s.hot_hits);
        out.push_counter("store_hot_misses", s.hot_misses);
        out.push_counter("store_decodes", s.decodes);
        out.push_counter("store_decode_ns_total", s.decode_ns);
        out.push_counter("store_invalidations", s.invalidations);
        out.push_gauge("store_gates", self.len() as u64);
        out.push_gauge("store_hot_len", self.hot_len() as u64);
        out.push_gauge("store_hot_capacity", self.hot_capacity as u64);
        out.push_gauge("store_shards", self.shards.len() as u64);
        out.push_histogram("store_decode_ns", self.metrics.decode_ns.snapshot());
        out.push_histogram("store_miss_decode_ns", self.metrics.miss_decode_ns.snapshot());
        if self.codec_metrics {
            out.push_histogram("store_encode_ns", self.metrics.encode_ns.snapshot());
            for (variant, h) in self.metrics.variant_decode_ns.read().iter() {
                let name = format!("store_decode_ns_{}", variant_metric_suffix(*variant));
                out.push_histogram(name, h.snapshot());
            }
        }
    }

    /// Number of gates stored.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.state.read().map.len()).sum()
    }

    /// `true` if no gates are stored.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.state.read().map.is_empty())
    }

    /// `true` if the store holds a stream for the gate.
    pub fn contains(&self, id: &GateId) -> bool {
        self.shards[self.shard_index(id)].state.read().map.contains_key(id)
    }

    /// All stored gate ids, sorted (deterministic across runs — gate ids
    /// are `Ord`).
    pub fn gates(&self) -> Vec<GateId> {
        let mut out: Vec<GateId> = Vec::with_capacity(self.len());
        for slot in &self.shards {
            out.extend(slot.state.read().map.keys().cloned());
        }
        out.sort();
        out
    }

    /// Visits every stored `(gate, stream)` pair under shard read
    /// locks, without cloning a single stream — the export bridge
    /// serializers use (the `compaqt-io` container writer drains a
    /// serving store through this). Visit order is unspecified
    /// (shard-major, hash-map order within a shard); callers needing a
    /// canonical order must sort what they collect.
    ///
    /// Concurrent inserts to a shard not yet visited are observed;
    /// holding one shard's read lock never blocks writers of another.
    pub fn for_each_entry(&self, mut f: impl FnMut(&GateId, &CompressedWaveform)) {
        for slot in &self.shards {
            let shard = slot.state.read();
            for (id, entry) in shard.map.iter() {
                f(id, &entry.z);
            }
        }
    }

    /// Decoded waveforms currently parked across all hot sets
    /// (lock-free: sums the published snapshots).
    pub fn hot_len(&self) -> usize {
        self.shards.iter().map(|s| s.hot.load_full().entries.len()).sum()
    }

    /// The number of shards (power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Which shard a gate routes to — stable across runs and machines.
    pub fn shard_index(&self, id: &GateId) -> usize {
        (id.stable_hash() & self.shard_mask) as usize
    }

    /// Pops a pooled scratch, or builds one (first use per concurrency
    /// level only).
    fn checkout(&self) -> DecodeScratch {
        self.scratches.lock().pop().unwrap_or_default()
    }

    /// Parks a scratch back in the pool (dropped if the pool is full,
    /// bounding memory under reader-count spikes).
    fn checkin(&self, scratch: DecodeScratch) {
        let mut pool = self.scratches.lock();
        if pool.len() < self.scratch_bound {
            pool.push(scratch);
        }
    }

    /// Registers the decompression engine for a variant, if new.
    fn ensure_engine(&self, variant: Variant) -> Result<(), CompressError> {
        if self.engines.read().iter().any(|(v, _)| *v == variant) {
            return Ok(());
        }
        let engine = DecompressionEngine::for_variant(variant)?;
        let mut engines = self.engines.write();
        if !engines.iter().any(|(v, _)| *v == variant) {
            engines.push((variant, engine));
        }
        Ok(())
    }

    /// Runs `f` with the shared engine for `variant`.
    fn with_engine<R>(&self, variant: Variant, f: impl FnOnce(&DecompressionEngine) -> R) -> R {
        let engines = self.engines.read();
        let engine = engines
            .iter()
            .find(|(v, _)| *v == variant)
            .map(|(_, e)| e)
            .expect("engine registered before the entry became visible");
        f(engine)
    }
}

impl Collect for Store {
    fn collect(&self, out: &mut Snapshot) {
        self.collect_obs(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use compaqt_pulse::device::Device;
    use compaqt_pulse::library::GateKind;
    use compaqt_pulse::vendor::Vendor;

    fn library() -> Arc<PulseLibrary> {
        Device::synthesize(Vendor::Ibm, 3, 0x570FE).pulse_library()
    }

    fn store() -> Store {
        let compressor = Compressor::new(Variant::IntDctW { ws: 16 });
        Store::from_library(&library(), &compressor).unwrap()
    }

    #[test]
    fn fetch_into_matches_engine_decode() {
        let lib = library();
        let compressor = Compressor::new(Variant::IntDctW { ws: 16 });
        let store = Store::from_library(&lib, &compressor).unwrap();
        let engine = DecompressionEngine::for_variant(compressor.variant()).unwrap();
        let (mut i, mut q) = (Vec::new(), Vec::new());
        for (gate, wf) in lib.iter() {
            let z = compressor.compress(wf).unwrap();
            let (expect, expect_stats) = engine.decompress(&z).unwrap();
            let stats = store.fetch_into(gate, &mut i, &mut q).unwrap();
            assert_eq!(expect.i(), &i[..], "{gate}: I channel");
            assert_eq!(expect.q(), &q[..], "{gate}: Q channel");
            assert_eq!(expect_stats, stats, "{gate}: engine stats");
        }
    }

    #[test]
    fn fetch_cached_hits_skip_the_decoder() {
        let store = store();
        let gate = store.gates().remove(0);
        let a = store.fetch_cached(&gate).unwrap();
        let before = store.stats();
        let b = store.fetch_cached(&gate).unwrap();
        let after = store.stats();
        assert_eq!(a.i(), b.i());
        assert!(Arc::ptr_eq(&a, &b), "hit must be the same shared decode");
        assert_eq!(after.decodes, before.decodes, "hit must not decode");
        assert_eq!(after.hot_hits, before.hot_hits + 1);
    }

    #[test]
    fn unknown_gate_is_a_clean_error() {
        let store = store();
        let missing = GateId::single(GateKind::X, 99);
        assert!(matches!(
            store.fetch_into(&missing, &mut Vec::new(), &mut Vec::new()),
            Err(StoreError::UnknownGate(_))
        ));
        assert!(matches!(store.fetch_cached(&missing), Err(StoreError::UnknownGate(_))));
    }

    #[test]
    fn insert_invalidates_the_hot_copy() {
        let lib = library();
        let store = store();
        let (gate, wf) = lib.iter().next().unwrap();
        let old = store.fetch_cached(gate).unwrap();
        // Recalibrate: same gate, visibly different waveform.
        let shifted =
            Waveform::new(format!("{gate}"), vec![0.25; wf.len()], vec![0.0; wf.len()], 4.54);
        let z = Compressor::new(Variant::Delta).compress(&shifted).unwrap();
        store.insert(gate.clone(), z).unwrap();
        let new = store.fetch_cached(gate).unwrap();
        assert!(!Arc::ptr_eq(&old, &new), "stale decode must not be served");
        assert!((new.i()[0] - 0.25).abs() < 1e-3);
        assert!(store.stats().invalidations >= 1);
    }

    #[test]
    fn invalidate_and_remove() {
        let store = store();
        let gate = store.gates().remove(0);
        assert!(!store.invalidate(&gate), "nothing hot yet");
        store.fetch_cached(&gate).unwrap();
        assert!(store.invalidate(&gate));
        assert!(store.contains(&gate));
        assert!(store.remove(&gate).is_some());
        assert!(!store.contains(&gate));
        assert!(store.remove(&gate).is_none());
    }

    #[test]
    fn hot_set_is_bounded_and_evicts_lru() {
        // One shard, two hot slots: the third distinct fetch evicts the
        // least recently used.
        let lib = library();
        let compressor = Compressor::new(Variant::IntDctW { ws: 16 });
        let store = Store::from_library_with(
            &lib,
            &compressor,
            StoreConfig { shards: 1, hot_capacity: 2, ..StoreConfig::default() },
        )
        .unwrap();
        let gates = store.gates();
        assert!(gates.len() >= 3);
        store.fetch_cached(&gates[0]).unwrap();
        store.fetch_cached(&gates[1]).unwrap();
        store.fetch_cached(&gates[0]).unwrap(); // refresh gate 0
        store.fetch_cached(&gates[2]).unwrap(); // evicts gate 1
        assert_eq!(store.hot_len(), 2);
        let before = store.stats();
        store.fetch_cached(&gates[0]).unwrap();
        assert_eq!(store.stats().hot_hits, before.hot_hits + 1, "gate 0 stayed hot");
        let before = store.stats();
        store.fetch_cached(&gates[1]).unwrap();
        assert_eq!(store.stats().hot_misses, before.hot_misses + 1, "gate 1 was evicted");
    }

    #[test]
    fn zero_hot_capacity_disables_caching() {
        let lib = library();
        let compressor = Compressor::new(Variant::IntDctW { ws: 16 });
        let store = Store::from_library_with(
            &lib,
            &compressor,
            StoreConfig { shards: 4, hot_capacity: 0, ..StoreConfig::default() },
        )
        .unwrap();
        let gate = store.gates().remove(0);
        store.fetch_cached(&gate).unwrap();
        store.fetch_cached(&gate).unwrap();
        assert_eq!(store.hot_len(), 0);
        assert_eq!(store.stats().hot_hits, 0);
        assert_eq!(store.stats().decodes, 2);
    }

    #[test]
    fn shard_routing_is_stable_and_in_range() {
        let store =
            Store::new(StoreConfig { shards: 5, hot_capacity: 8, ..StoreConfig::default() });
        assert_eq!(store.shard_count(), 8, "rounded up to a power of two");
        let id = GateId::pair(GateKind::Cx, 3, 7);
        let s = store.shard_index(&id);
        assert!(s < 8);
        assert_eq!(s, store.shard_index(&id), "routing is a pure function of the id");
    }

    #[test]
    fn shard_rounding_and_layout_are_pinned() {
        // `StoreConfig::shards` rounds up to the next power of two
        // (minimum 1). Pinned so a refactor can't change the effective
        // count — that would silently reshuffle every gate's shard.
        for (requested, effective) in
            [(0, 1), (1, 1), (2, 2), (3, 4), (5, 8), (8, 8), (9, 16), (16, 16), (17, 32)]
        {
            let store = Store::new(StoreConfig {
                shards: requested,
                hot_capacity: 0,
                ..StoreConfig::default()
            });
            assert_eq!(store.shard_count(), effective, "shards: {requested}");
        }
        // Routing is the stable hash masked by (shards - 1); pin the
        // formula so the layout itself can't drift either.
        let store =
            Store::new(StoreConfig { shards: 8, hot_capacity: 0, ..StoreConfig::default() });
        for id in [
            GateId::single(GateKind::X, 0),
            GateId::single(GateKind::Sx, 12),
            GateId::pair(GateKind::Cx, 3, 7),
            GateId::pair(GateKind::Fsim, 40, 41),
        ] {
            assert_eq!(store.shard_index(&id), (id.stable_hash() & 7) as usize, "{id}");
        }
    }

    #[test]
    fn hot_capacity_is_a_global_bound_under_skewed_hashing() {
        // Route a whole working set into ONE shard of an 8-shard store
        // whose global budget is 4. The old per-shard split
        // (div_ceil(4/8) = 1 slot per shard) both inflated the global
        // bound (8 effective slots) and thrashed skewed traffic (the
        // busy shard got one slot while seven sat empty). The honest
        // global budget must (a) never exceed 4 parked decodes and
        // (b) let the skewed 4-gate working set stay entirely hot.
        let lib = library();
        let compressor = Compressor::new(Variant::IntDctW { ws: 16 });
        let store = Store::from_library_with(
            &lib,
            &compressor,
            StoreConfig { shards: 8, hot_capacity: 4, ..StoreConfig::default() },
        )
        .unwrap();
        let gates = store.gates();
        // Pick the shard holding the most gates and keep 4 of its gates.
        let busiest =
            (0..8).max_by_key(|s| gates.iter().filter(|g| store.shard_index(g) == *s).count());
        let skewed: Vec<GateId> = gates
            .iter()
            .filter(|g| store.shard_index(g) == busiest.unwrap())
            .take(4)
            .cloned()
            .collect();
        assert!(skewed.len() >= 2, "need a multi-gate single-shard working set");

        for pass in 0..3 {
            for gate in &skewed {
                store.fetch_cached(gate).unwrap();
                assert!(store.hot_len() <= 4, "pass {pass}: global bound violated");
            }
        }
        let stats = store.stats();
        assert_eq!(stats.hot_misses, skewed.len() as u64, "first pass misses only");
        assert_eq!(stats.hot_hits, 2 * skewed.len() as u64, "repeat passes must not thrash");

        // Now sweep every gate: evictions happen, the bound still holds.
        for gate in &gates {
            store.fetch_cached(gate).unwrap();
            assert!(store.hot_len() <= 4, "sweep: global bound violated");
        }
    }

    #[test]
    fn counters_ledger_is_exact_across_fetch_paths() {
        // Single shard so fetch_many processes `ids` in order and the
        // partial-failure ledger below is deterministic.
        let lib = library();
        let compressor = Compressor::new(Variant::IntDctW { ws: 16 });
        let store = Store::from_library_with(
            &lib,
            &compressor,
            StoreConfig { shards: 1, hot_capacity: 64, ..StoreConfig::default() },
        )
        .unwrap();
        let ids = store.gates();
        let k = ids.len() as u64;
        let mut outs: Vec<(Vec<f64>, Vec<f64>)> = ids.iter().map(|_| Default::default()).collect();

        // One batched call counts one fetch + one decode PER GATE.
        store.fetch_many(&ids, &mut outs).unwrap();
        let s = store.stats();
        assert_eq!((s.fetches, s.decodes, s.hot_hits, s.hot_misses), (k, k, 0, 0));

        // Duplicates in a batch each count: 2k more fetches/decodes.
        let doubled: Vec<GateId> = ids.iter().chain(ids.iter()).cloned().collect();
        let mut outs2: Vec<(Vec<f64>, Vec<f64>)> =
            doubled.iter().map(|_| Default::default()).collect();
        store.fetch_many(&doubled, &mut outs2).unwrap();
        let s = store.stats();
        assert_eq!((s.fetches, s.decodes), (3 * k, 3 * k));

        // A failing batch counts the gates decoded before the failure
        // and nothing for the unknown gate itself.
        let missing = GateId::single(GateKind::X, 99);
        let mut failing = ids.clone();
        failing.push(missing.clone());
        let mut outs3: Vec<(Vec<f64>, Vec<f64>)> =
            failing.iter().map(|_| Default::default()).collect();
        assert!(store.fetch_many(&failing, &mut outs3).is_err());
        let s = store.stats();
        assert_eq!((s.fetches, s.decodes), (4 * k, 4 * k), "prefix decoded before failure");

        // Unknown-first: the shard lock is taken, but nothing may be
        // booked — neither counts nor decode time.
        let before = store.stats();
        let mut failing_first = vec![missing];
        failing_first.extend(ids.iter().cloned());
        let mut outs4: Vec<(Vec<f64>, Vec<f64>)> =
            failing_first.iter().map(|_| Default::default()).collect();
        assert!(store.fetch_many(&failing_first, &mut outs4).is_err());
        let s = store.stats();
        assert_eq!(s, before, "failed-at-first batch books nothing, not even decode_ns");

        // The cached path keeps its own exact ledger alongside.
        for id in &ids {
            store.fetch_cached(id).unwrap();
            store.fetch_cached(id).unwrap();
        }
        let s = store.stats();
        assert_eq!(s.fetches, 4 * k + 2 * k);
        assert_eq!(s.decodes, 4 * k + k);
        assert_eq!((s.hot_hits, s.hot_misses), (k, k));
    }

    #[test]
    fn with_stream_borrows_without_decoding() {
        let lib = library();
        let compressor = Compressor::new(Variant::IntDctW { ws: 16 });
        let store = Store::from_library(&lib, &compressor).unwrap();
        let gate = store.gates().remove(0);
        let expected = compressor.compress(lib.get(&gate).unwrap()).unwrap();
        let before = store.stats();
        let (variant, n) = store.with_stream(&gate, |z| (z.variant, z.n_samples)).unwrap();
        assert_eq!(variant, expected.variant);
        assert_eq!(n, expected.n_samples);
        assert_eq!(store.stats(), before, "a stream borrow is not a fetch");
        let missing = GateId::single(GateKind::X, 99);
        assert!(matches!(store.with_stream(&missing, |_| ()), Err(StoreError::UnknownGate(_))));
    }

    #[test]
    fn mixed_variants_share_one_store() {
        let lib = library();
        let store = Store::new(StoreConfig::default());
        for (k, (gate, wf)) in lib.iter().enumerate() {
            let variant = match k % 3 {
                0 => Variant::IntDctW { ws: 16 },
                1 => Variant::DctN,
                _ => Variant::Delta,
            };
            store.insert(gate.clone(), Compressor::new(variant).compress(wf).unwrap()).unwrap();
        }
        let (mut i, mut q) = (Vec::new(), Vec::new());
        for (gate, wf) in lib.iter() {
            store.fetch_into(gate, &mut i, &mut q).unwrap();
            assert_eq!(i.len(), wf.len(), "{gate}");
        }
    }

    #[test]
    fn bad_variant_insert_is_rejected_and_store_unchanged() {
        let lib = library();
        let store = Store::new(StoreConfig::default());
        let (gate, wf) = lib.iter().next().unwrap();
        let mut z = Compressor::new(Variant::IntDctW { ws: 16 }).compress(wf).unwrap();
        z.variant = Variant::IntDctW { ws: 10 };
        assert!(store.insert(gate.clone(), z).is_err());
        assert!(store.is_empty());
    }

    #[test]
    fn stats_account_fetches_and_time() {
        let store = store();
        let gate = store.gates().remove(0);
        let (mut i, mut q) = (Vec::new(), Vec::new());
        store.fetch_into(&gate, &mut i, &mut q).unwrap();
        store.fetch_cached(&gate).unwrap();
        store.fetch_cached(&gate).unwrap();
        let s = store.stats();
        assert_eq!(s.fetches, 3);
        assert_eq!(s.decodes, 2);
        assert_eq!(s.hot_hits, 1);
        assert_eq!(s.hot_misses, 1);
        assert!(s.hit_rate() > 0.49 && s.hit_rate() < 0.51);
    }

    #[test]
    fn fetch_many_is_bit_exact_with_repeated_fetch_into() {
        let lib = library();
        let store =
            Store::new(StoreConfig { shards: 4, hot_capacity: 8, ..StoreConfig::default() });
        // Mixed variants so the batch crosses engines as well as shards.
        for (k, (gate, wf)) in lib.iter().enumerate() {
            let variant = match k % 3 {
                0 => Variant::IntDctW { ws: 16 },
                1 => Variant::DctN,
                _ => Variant::Delta,
            };
            store.insert(gate.clone(), Compressor::new(variant).compress(wf).unwrap()).unwrap();
        }
        let ids = store.gates();
        let mut outs: Vec<(Vec<f64>, Vec<f64>)> = ids.iter().map(|_| Default::default()).collect();
        let batch_stats = store.fetch_many(&ids, &mut outs).unwrap();
        let (mut i, mut q) = (Vec::new(), Vec::new());
        let mut merged = EngineStats::default();
        for (id, (bi, bq)) in ids.iter().zip(&outs) {
            let stats = store.fetch_into(id, &mut i, &mut q).unwrap();
            merged.merge(&stats);
            assert_eq!(&i, bi, "{id}: I channel");
            assert_eq!(&q, bq, "{id}: Q channel");
        }
        assert_eq!(batch_stats, merged, "batch stats are the per-gate merge");
        assert_eq!(store.stats().fetches, 2 * ids.len() as u64);
    }

    #[test]
    fn collect_obs_mirrors_stats_and_feeds_histograms() {
        let lib = library();
        let compressor = Compressor::new(Variant::IntDctW { ws: 16 });
        let store = Store::from_library_with(
            &lib,
            &compressor,
            StoreConfig { codec_metrics: true, ..StoreConfig::default() },
        )
        .unwrap();
        let gate = store.gates().remove(0);
        let (mut i, mut q) = (Vec::new(), Vec::new());
        store.fetch_into(&gate, &mut i, &mut q).unwrap();
        store.fetch_cached(&gate).unwrap(); // miss
        store.fetch_cached(&gate).unwrap(); // hit: must not record
        let mut snap = Snapshot::new();
        store.collect_obs(&mut snap);
        let s = store.stats();
        assert_eq!(snap.counter("store_fetches"), Some(s.fetches));
        assert_eq!(snap.counter("store_hot_hits"), Some(1));
        assert_eq!(snap.counter("store_decode_ns_total"), Some(s.decode_ns));
        assert_eq!(snap.gauge("store_gates"), Some(lib.len() as u64));
        assert_eq!(snap.gauge("store_hot_len"), Some(1));
        let decode = snap.histogram("store_decode_ns").expect("aggregate histogram present");
        assert_eq!(decode.count(), 1, "one fetch_into sample");
        let miss = snap.histogram("store_miss_decode_ns").expect("miss histogram present");
        assert_eq!(miss.count(), 1, "one miss sample; the hit recorded nothing");
        // codec_metrics: encode timing plus the per-variant breakdown.
        let enc = snap.histogram("store_encode_ns").expect("encode histogram present");
        assert_eq!(enc.count(), lib.len() as u64, "one encode sample per waveform");
        let variant =
            snap.histogram("store_decode_ns_int_dct_w16").expect("per-variant histogram present");
        assert_eq!(variant.count(), 2, "fetch_into + miss; batch and hit paths excluded");
    }

    #[test]
    fn codec_metrics_off_suppresses_variant_histograms() {
        let store = store(); // default config: codec_metrics = false
        let gate = store.gates().remove(0);
        let (mut i, mut q) = (Vec::new(), Vec::new());
        store.fetch_into(&gate, &mut i, &mut q).unwrap();
        let mut snap = Snapshot::new();
        store.collect_obs(&mut snap);
        assert!(snap.histogram("store_decode_ns").is_some(), "aggregates stay on");
        assert!(snap.histogram("store_encode_ns").is_none());
        assert!(snap.histogram("store_decode_ns_int_dct_w16").is_none());
    }

    #[test]
    fn trace_captures_recalibration_and_eviction() {
        let lib = library();
        let compressor = Compressor::new(Variant::IntDctW { ws: 16 });
        let store = Store::from_library_with(
            &lib,
            &compressor,
            StoreConfig { shards: 1, hot_capacity: 1, ..StoreConfig::default() },
        )
        .unwrap();
        let ring = Arc::new(TraceRing::new(16));
        assert!(store.attach_trace(Arc::clone(&ring)));
        assert!(!store.attach_trace(Arc::new(TraceRing::new(16))), "first attach wins");

        let gates = store.gates();
        store.fetch_cached(&gates[0]).unwrap();
        store.fetch_cached(&gates[1]).unwrap(); // budget 1: evicts gate 0
        let events = ring.snapshot();
        assert!(
            events.iter().any(|e| e.kind == TraceKind::HotEviction && e.b == 0),
            "eviction must be traced with the post-eviction occupancy: {events:?}"
        );

        // Re-inserting an existing gate is a recalibration publish;
        // the initial library load above must NOT have traced any.
        assert!(!events.iter().any(|e| e.kind == TraceKind::RecalibrationPublish));
        let wf = lib.get(&gates[0]).unwrap();
        let z = compressor.compress(wf).unwrap();
        store.insert(gates[0].clone(), z).unwrap();
        let events = ring.snapshot();
        assert!(events.iter().any(|e| e.kind == TraceKind::RecalibrationPublish && e.a == 0));
    }

    #[test]
    fn fetch_many_reports_missing_gates() {
        let store = store();
        let mut ids = store.gates();
        ids.push(GateId::single(GateKind::X, 99));
        let mut outs: Vec<(Vec<f64>, Vec<f64>)> = ids.iter().map(|_| Default::default()).collect();
        assert!(matches!(store.fetch_many(&ids, &mut outs), Err(StoreError::UnknownGate(_))));
        // Empty batches are a no-op, not an error.
        assert_eq!(store.fetch_many(&[], &mut []).unwrap(), EngineStats::default());
    }

    #[test]
    fn for_each_entry_visits_every_stream_once() {
        let lib = library();
        let store = store();
        let mut seen = Vec::new();
        store.for_each_entry(|gate, z| {
            assert!(!z.name.is_empty());
            seen.push(gate.clone());
        });
        seen.sort();
        assert_eq!(seen, store.gates());
        assert_eq!(seen.len(), lib.len());
    }

    #[test]
    fn into_store_bridge_preserves_streams() {
        let lib = library();
        let compressor = Compressor::new(Variant::IntDctW { ws: 16 });
        let report = crate::stats::compress_library(&lib, &compressor).unwrap();
        let n = report.waveforms.len();
        let store = report.into_store(StoreConfig::default()).unwrap();
        assert_eq!(store.len(), n);
        let (mut i, mut q) = (Vec::new(), Vec::new());
        for (gate, wf) in lib.iter() {
            store.fetch_into(gate, &mut i, &mut q).unwrap();
            assert_eq!(i.len(), wf.len());
        }
    }
}
