//! Overlapped-window compression (the paper's proposed fix for WS=8
//! boundary distortion).
//!
//! Section VII-B observes that WS=8 loses fidelity on some benchmarks
//! because of "distortions introduced at the boundaries of consecutive
//! windows. These distortions can be reduced by using overlapping
//! windows". This module implements that extension: 50%-overlapped
//! windows under a sqrt-Hann analysis/synthesis pair (a lapped transform
//! in the MDCT spirit). Perfect reconstruction holds by the
//! constant-overlap-add property; thresholding error no longer lands on a
//! hard window edge but is cross-faded between neighbours.
//!
//! The cost: ~2x the window count, so roughly half the compression ratio
//! — exactly the trade the ablation bench quantifies.
//!
//! **When it wins:** reach for the overlapped encoder only when WS=8-class
//! boundary distortion is the dominant error term — short windows on
//! fast-varying envelopes (DRAG derivatives, steep ramps) where the
//! plain windowed codec shows visible seams at window edges. For WS=16
//! on typical control pulses the plain codec's boundary error is already
//! below the threshold-induced error, and the 2x window overhead buys
//! nothing. Channels are encoded independently here (no I/Q
//! equalization): each frame keeps its own coefficient count, because
//! the synthesis window cross-fades reconstruction error anyway.
//!
//! Both codec directions follow the workspace's allocating-vs-`_into`
//! convention: [`OverlapCompressor::compress`] /
//! [`OverlapCompressor::decode_channel`] allocate per call, while
//! [`OverlapCompressor::compress_into`] /
//! [`OverlapCompressor::decode_channel_into`] thread caller-owned
//! scratches and reuse output buffers, bit-exactly.

use crate::compress::ChannelData;
use crate::CompressError;
use compaqt_dsp::dct::Dct;
use compaqt_dsp::metrics::CompressionRatio;
use compaqt_dsp::rle::{CodedWord, RleCodeword, RleDecoder};
use compaqt_pulse::waveform::Waveform;
use serde::{Deserialize, Serialize};
use std::f64::consts::PI;

/// An overlapped-window compressed waveform.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OverlapCompressed {
    /// Waveform name.
    pub name: String,
    /// Window size (hop is `ws / 2`).
    pub ws: usize,
    /// Original sample count.
    pub n_samples: usize,
    /// DAC sampling rate.
    pub sample_rate_gs: f64,
    /// Coded windows for I.
    pub i: ChannelData,
    /// Coded windows for Q.
    pub q: ChannelData,
}

impl OverlapCompressed {
    /// An empty placeholder, intended as the reusable output slot of
    /// [`OverlapCompressor::compress_into`] (which overwrites every
    /// field).
    pub fn empty() -> Self {
        OverlapCompressed {
            name: String::new(),
            ws: 0,
            n_samples: 0,
            sample_rate_gs: 0.0,
            i: ChannelData::Windows(Vec::new()),
            q: ChannelData::Windows(Vec::new()),
        }
    }

    /// Compression ratio (paper convention). Saturating, so hostile
    /// sample-count claims cannot overflow the accounting.
    pub fn ratio(&self) -> CompressionRatio {
        let old = self.n_samples.saturating_mul(crate::compress::SAMPLE_BYTES);
        let new = (self.i.size_bits().saturating_add(self.q.size_bits())).div_ceil(8);
        CompressionRatio::new(old, new.max(1))
    }

    /// Decompresses by windowed IDCT + overlap-add.
    ///
    /// # Errors
    ///
    /// Returns an error for malformed run-length streams or metadata
    /// (mismatched channel expansions, bogus sample rate).
    pub fn decompress(&self) -> Result<Waveform, CompressError> {
        let compressor = OverlapCompressor::new(self.ws)?;
        let i = compressor.decode_channel(&self.i, self.n_samples)?;
        let q = compressor.decode_channel(&self.q, self.n_samples)?;
        crate::engine::checked_waveform(&self.name, i, q, self.sample_rate_gs)
    }
}

/// Compressor with 50%-overlapped sqrt-Hann windows.
#[derive(Debug, Clone)]
pub struct OverlapCompressor {
    ws: usize,
    hop: usize,
    dct: Dct,
    window: Vec<f64>,
    threshold: f64,
    scale: f64,
}

impl OverlapCompressor {
    /// Creates an overlapped compressor for window size `ws` (even,
    /// supported by the windowed transforms).
    ///
    /// # Errors
    ///
    /// Returns [`CompressError::UnsupportedWindow`] for unsupported sizes.
    pub fn new(ws: usize) -> Result<Self, CompressError> {
        if !compaqt_dsp::intdct::SUPPORTED_SIZES.contains(&ws) {
            return Err(CompressError::UnsupportedWindow(ws));
        }
        // sqrt-Hann: w[n] = sin(pi (n + 0.5) / ws); w^2 overlap-adds to 1
        // at 50% hop.
        let window: Vec<f64> = (0..ws).map(|n| (PI * (n as f64 + 0.5) / ws as f64).sin()).collect();
        let scale = f64::from(1u32 << crate::compress::float_coeff_scale_bits(ws));
        Ok(OverlapCompressor {
            ws,
            hop: ws / 2,
            dct: Dct::new(ws),
            window,
            threshold: crate::compress::DEFAULT_THRESHOLD,
            scale,
        })
    }

    /// Sets the coefficient threshold.
    pub fn with_threshold(mut self, threshold: f64) -> Self {
        self.threshold = threshold;
        self
    }

    /// Compresses a waveform.
    ///
    /// Allocating wrapper over [`OverlapCompressor::compress_into`].
    ///
    /// # Errors
    ///
    /// Currently infallible after construction; kept fallible for parity
    /// with [`crate::compress::Compressor::compress`].
    pub fn compress(&self, wf: &Waveform) -> Result<OverlapCompressed, CompressError> {
        let mut scratch = crate::engine::EncodeScratch::new();
        let mut out = OverlapCompressed::empty();
        self.compress_into(wf, &mut scratch, &mut out)?;
        Ok(out)
    }

    /// Compresses into a caller-owned output, threading the per-frame
    /// analysis staging through `scratch` — bit-exact with
    /// [`OverlapCompressor::compress`] (which wraps this). With warmed
    /// buffers, recompressing the same shape allocates nothing.
    ///
    /// # Errors
    ///
    /// Currently infallible after construction; kept fallible for parity
    /// with [`crate::compress::Compressor::compress_into`].
    pub fn compress_into(
        &self,
        wf: &Waveform,
        scratch: &mut crate::engine::EncodeScratch,
        out: &mut OverlapCompressed,
    ) -> Result<(), CompressError> {
        out.name.clear();
        out.name.push_str(wf.name());
        out.ws = self.ws;
        out.n_samples = wf.len();
        out.sample_rate_gs = wf.sample_rate_gs();
        self.encode_channel_into(wf.i(), scratch, &mut out.i);
        self.encode_channel_into(wf.q(), scratch, &mut out.q);
        Ok(())
    }

    fn n_frames(&self, n_samples: usize) -> usize {
        // Frames cover [k*hop, k*hop + ws); pad one hop at each end.
        n_samples.div_ceil(self.hop) + 1
    }

    /// Analysis-windows, transforms and run-length encodes one channel
    /// into a reused channel slot. Overlapped channels are independent
    /// (no I/Q equalization: each frame keeps its own coefficient
    /// count), so this is a complete per-channel encoder.
    pub fn encode_channel_into(
        &self,
        samples: &[f64],
        scratch: &mut crate::engine::EncodeScratch,
        out: &mut ChannelData,
    ) {
        let n_frames = self.n_frames(samples.len());
        let windows = crate::compress::windows_buf(out, n_frames, &mut scratch.spare_windows);
        for (frame, words) in windows.iter_mut().enumerate() {
            let start = frame as isize * self.hop as isize - self.hop as isize;
            let (buf, fcoeffs, quant) = scratch.float_buffers(self.ws);
            for (k, b) in buf.iter_mut().enumerate() {
                let idx = start + k as isize;
                *b = if idx >= 0 && (idx as usize) < samples.len() {
                    samples[idx as usize] * self.window[k]
                } else {
                    0.0
                };
            }
            self.dct.forward_into(buf, fcoeffs);
            compaqt_dsp::threshold::apply_threshold(fcoeffs, self.threshold);
            for (qc, &c) in quant.iter_mut().zip(fcoeffs.iter()) {
                *qc = ((c * self.scale).round() as i32)
                    .clamp(compaqt_dsp::rle::MIN_COEFF, compaqt_dsp::rle::MAX_COEFF);
            }
            let keep = self.ws - compaqt_dsp::threshold::trailing_zeros(quant);
            words
                .extend(quant[..keep].iter().map(|&c| CodedWord::Coeff(CodedWord::clamp_coeff(c))));
            if keep < self.ws {
                words.push(CodedWord::Rle(RleCodeword {
                    run: (self.ws - keep) as u16,
                    repeat_previous: false,
                }));
            }
        }
    }

    /// Decodes one channel via IDCT + windowed overlap-add.
    ///
    /// Allocating wrapper over [`OverlapCompressor::decode_channel_into`].
    ///
    /// # Errors
    ///
    /// Returns an error for malformed run-length streams.
    pub fn decode_channel(
        &self,
        channel: &ChannelData,
        n_samples: usize,
    ) -> Result<Vec<f64>, CompressError> {
        let mut scratch = crate::engine::DecodeScratch::new();
        let mut out = Vec::new();
        self.decode_channel_into(channel, n_samples, &mut scratch, &mut out)?;
        Ok(out)
    }

    /// Zero-allocation overlap-add decode into caller buffers: `out` is
    /// cleared, zero-filled to `n_samples` and accumulated in place, with
    /// per-frame staging running through `scratch`. Bit-exact with
    /// [`OverlapCompressor::decode_channel`] (which now wraps this).
    ///
    /// # Errors
    ///
    /// Returns an error for malformed run-length streams, or for a
    /// sample-count claim no lapped frame layout could produce (hostile
    /// metadata must not size the output buffer).
    pub fn decode_channel_into(
        &self,
        channel: &ChannelData,
        n_samples: usize,
        scratch: &mut crate::engine::DecodeScratch,
        out: &mut Vec<f64>,
    ) -> Result<(), CompressError> {
        let windows = match channel {
            ChannelData::Windows(w) => w,
            _ => return Err(CompressError::UnsupportedWindow(0)),
        };
        // Every valid 50%-hop stream stores n_frames(n) > n/hop frames,
        // so a claim beyond windows*hop is impossible; reject it before
        // the claim sizes any allocation.
        if n_samples > windows.len().saturating_mul(self.hop) {
            return Err(CompressError::MalformedStream {
                reason: "lapped stream claims more samples than its frames cover",
            });
        }
        let decoder = RleDecoder::new();
        out.clear();
        out.resize(n_samples, 0.0);
        for (frame, words) in windows.iter().enumerate() {
            let (coeffs, fcoeffs, time) = scratch.lapped_buffers(self.ws);
            decoder.decode_window_into(words, coeffs)?;
            for (f, &c) in fcoeffs.iter_mut().zip(coeffs.iter()) {
                *f = f64::from(c) / self.scale;
            }
            self.dct.inverse_into(fcoeffs, time);
            let start = frame as isize * self.hop as isize - self.hop as isize;
            for (k, &v) in time.iter().enumerate() {
                let idx = start + k as isize;
                if idx >= 0 && (idx as usize) < n_samples {
                    out[idx as usize] += v * self.window[k];
                }
            }
        }
        Ok(())
    }
}

/// Measures the boundary-localized error of a codec: the mean squared
/// error restricted to samples within `margin` of a window boundary.
pub fn boundary_mse(original: &Waveform, restored: &Waveform, ws: usize, margin: usize) -> f64 {
    let mut acc = 0.0;
    let mut count = 0usize;
    for (k, (a, b)) in original.i().iter().zip(restored.i()).enumerate() {
        let pos = k % ws;
        let near = pos < margin || pos + margin >= ws;
        if near {
            acc += (a - b) * (a - b);
            count += 1;
        }
    }
    acc / count.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compress::{Compressor, Variant};
    use compaqt_pulse::shapes::{Drag, PulseShape};

    fn pulse() -> Waveform {
        Drag::new(136, 0.5, 34.0, 0.2).to_waveform("X", 4.54)
    }

    #[test]
    fn sqrt_hann_satisfies_cola() {
        // The squared window must overlap-add to exactly 1 at 50% hop.
        let c = OverlapCompressor::new(8).unwrap();
        for n in 0..4 {
            let sum = c.window[n] * c.window[n] + c.window[n + 4] * c.window[n + 4];
            assert!((sum - 1.0).abs() < 1e-12, "position {n}: {sum}");
        }
    }

    #[test]
    fn zero_threshold_reconstructs_perfectly() {
        let wf = pulse();
        let c = OverlapCompressor::new(8).unwrap().with_threshold(0.0);
        let z = c.compress(&wf).unwrap();
        let back = z.decompress().unwrap();
        // Only coefficient quantization remains.
        assert!(wf.mse(&back) < 1e-6, "mse {:e}", wf.mse(&back));
    }

    #[test]
    fn overlap_reduces_boundary_error_at_ws8() {
        let wf = pulse();
        let plain = Compressor::new(Variant::DctW { ws: 8 }).with_threshold(0.04);
        let lapped = OverlapCompressor::new(8).unwrap().with_threshold(0.04);
        let plain_back = plain.compress(&wf).unwrap().decompress().unwrap();
        let lapped_back = lapped.compress(&wf).unwrap().decompress().unwrap();
        let b_plain = boundary_mse(&wf, &plain_back, 8, 1);
        let b_lapped = boundary_mse(&wf, &lapped_back, 8, 1);
        assert!(b_lapped < b_plain, "lapped boundary MSE {b_lapped:e} vs plain {b_plain:e}");
    }

    #[test]
    fn overlap_costs_compression_ratio() {
        let wf = pulse();
        let plain = Compressor::new(Variant::DctW { ws: 8 }).compress(&wf).unwrap();
        let lapped = OverlapCompressor::new(8).unwrap().compress(&wf).unwrap();
        assert!(lapped.ratio().ratio() < plain.ratio().ratio());
    }

    #[test]
    fn rejects_unsupported_window() {
        assert!(OverlapCompressor::new(10).is_err());
    }

    #[test]
    fn into_path_is_bit_exact_with_allocating_path() {
        let wf = pulse();
        let c = OverlapCompressor::new(8).unwrap();
        let z = c.compress(&wf).unwrap();
        let alloc = c.decode_channel(&z.i, z.n_samples).unwrap();
        let mut scratch = crate::engine::DecodeScratch::new();
        let mut out = Vec::new();
        c.decode_channel_into(&z.i, z.n_samples, &mut scratch, &mut out).unwrap();
        assert_eq!(alloc, out);
        // Scratch and buffer survive reuse on the other channel.
        let alloc_q = c.decode_channel(&z.q, z.n_samples).unwrap();
        c.decode_channel_into(&z.q, z.n_samples, &mut scratch, &mut out).unwrap();
        assert_eq!(alloc_q, out);
    }

    #[test]
    fn long_flat_tops_still_compress() {
        use compaqt_pulse::shapes::GaussianSquare;
        let wf = GaussianSquare::new(1362, 0.3, 40.0, 1020).to_waveform("CR", 4.54);
        let z = OverlapCompressor::new(16).unwrap().compress(&wf).unwrap();
        assert!(z.ratio().ratio() > 2.0, "got {}", z.ratio());
        assert!(wf.mse(&z.decompress().unwrap()) < 1e-4);
    }
}
