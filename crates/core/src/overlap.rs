//! Overlapped-window compression (the paper's proposed fix for WS=8
//! boundary distortion).
//!
//! Section VII-B observes that WS=8 loses fidelity on some benchmarks
//! because of "distortions introduced at the boundaries of consecutive
//! windows. These distortions can be reduced by using overlapping
//! windows". This module implements that extension: 50%-overlapped
//! windows under a sqrt-Hann analysis/synthesis pair (a lapped transform
//! in the MDCT spirit). Perfect reconstruction holds by the
//! constant-overlap-add property; thresholding error no longer lands on a
//! hard window edge but is cross-faded between neighbours.
//!
//! The cost: ~2x the window count, so roughly half the compression ratio
//! — exactly the trade the ablation bench quantifies.

use crate::compress::ChannelData;
use crate::CompressError;
use compaqt_dsp::dct::Dct;
use compaqt_dsp::metrics::CompressionRatio;
use compaqt_dsp::rle::{CodedWord, RleCodeword, RleDecoder};
use compaqt_pulse::waveform::Waveform;
use serde::{Deserialize, Serialize};
use std::f64::consts::PI;

/// An overlapped-window compressed waveform.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OverlapCompressed {
    /// Waveform name.
    pub name: String,
    /// Window size (hop is `ws / 2`).
    pub ws: usize,
    /// Original sample count.
    pub n_samples: usize,
    /// DAC sampling rate.
    pub sample_rate_gs: f64,
    /// Coded windows for I.
    pub i: ChannelData,
    /// Coded windows for Q.
    pub q: ChannelData,
}

impl OverlapCompressed {
    /// Compression ratio (paper convention).
    pub fn ratio(&self) -> CompressionRatio {
        let old = self.n_samples * crate::compress::SAMPLE_BYTES;
        let new = (self.i.size_bits() + self.q.size_bits()).div_ceil(8);
        CompressionRatio::new(old, new.max(1))
    }

    /// Decompresses by windowed IDCT + overlap-add.
    ///
    /// # Errors
    ///
    /// Returns an error for malformed run-length streams.
    pub fn decompress(&self) -> Result<Waveform, CompressError> {
        let compressor = OverlapCompressor::new(self.ws)?;
        let i = compressor.decode_channel(&self.i, self.n_samples)?;
        let q = compressor.decode_channel(&self.q, self.n_samples)?;
        Ok(Waveform::new(self.name.clone(), i, q, self.sample_rate_gs))
    }
}

/// Compressor with 50%-overlapped sqrt-Hann windows.
#[derive(Debug, Clone)]
pub struct OverlapCompressor {
    ws: usize,
    hop: usize,
    dct: Dct,
    window: Vec<f64>,
    threshold: f64,
    scale: f64,
}

impl OverlapCompressor {
    /// Creates an overlapped compressor for window size `ws` (even,
    /// supported by the windowed transforms).
    ///
    /// # Errors
    ///
    /// Returns [`CompressError::UnsupportedWindow`] for unsupported sizes.
    pub fn new(ws: usize) -> Result<Self, CompressError> {
        if !compaqt_dsp::intdct::SUPPORTED_SIZES.contains(&ws) {
            return Err(CompressError::UnsupportedWindow(ws));
        }
        // sqrt-Hann: w[n] = sin(pi (n + 0.5) / ws); w^2 overlap-adds to 1
        // at 50% hop.
        let window: Vec<f64> = (0..ws).map(|n| (PI * (n as f64 + 0.5) / ws as f64).sin()).collect();
        let scale = f64::from(1u32 << crate::compress::float_coeff_scale_bits(ws));
        Ok(OverlapCompressor {
            ws,
            hop: ws / 2,
            dct: Dct::new(ws),
            window,
            threshold: crate::compress::DEFAULT_THRESHOLD,
            scale,
        })
    }

    /// Sets the coefficient threshold.
    pub fn with_threshold(mut self, threshold: f64) -> Self {
        self.threshold = threshold;
        self
    }

    /// Compresses a waveform.
    ///
    /// # Errors
    ///
    /// Currently infallible after construction; kept fallible for parity
    /// with [`crate::compress::Compressor::compress`].
    pub fn compress(&self, wf: &Waveform) -> Result<OverlapCompressed, CompressError> {
        Ok(OverlapCompressed {
            name: wf.name().to_string(),
            ws: self.ws,
            n_samples: wf.len(),
            sample_rate_gs: wf.sample_rate_gs(),
            i: self.encode_channel(wf.i()),
            q: self.encode_channel(wf.q()),
        })
    }

    fn n_frames(&self, n_samples: usize) -> usize {
        // Frames cover [k*hop, k*hop + ws); pad one hop at each end.
        n_samples.div_ceil(self.hop) + 1
    }

    fn encode_channel(&self, samples: &[f64]) -> ChannelData {
        let mut windows = Vec::new();
        for frame in 0..self.n_frames(samples.len()) {
            let start = frame as isize * self.hop as isize - self.hop as isize;
            let mut buf = vec![0.0; self.ws];
            for (k, b) in buf.iter_mut().enumerate() {
                let idx = start + k as isize;
                if idx >= 0 && (idx as usize) < samples.len() {
                    *b = samples[idx as usize] * self.window[k];
                }
            }
            let mut coeffs = self.dct.forward(&buf);
            compaqt_dsp::threshold::apply_threshold(&mut coeffs, self.threshold);
            let quant: Vec<i32> = coeffs
                .iter()
                .map(|&c| {
                    ((c * self.scale).round() as i32)
                        .clamp(compaqt_dsp::rle::MIN_COEFF, compaqt_dsp::rle::MAX_COEFF)
                })
                .collect();
            let keep = quant.len() - compaqt_dsp::threshold::trailing_zeros(&quant);
            let mut words: Vec<CodedWord> = quant[..keep]
                .iter()
                .map(|&c| CodedWord::Coeff(CodedWord::clamp_coeff(c)))
                .collect();
            if keep < self.ws {
                words.push(CodedWord::Rle(RleCodeword {
                    run: (self.ws - keep) as u16,
                    repeat_previous: false,
                }));
            }
            windows.push(words);
        }
        ChannelData::Windows(windows)
    }

    /// Decodes one channel via IDCT + windowed overlap-add.
    ///
    /// Allocating wrapper over [`OverlapCompressor::decode_channel_into`].
    ///
    /// # Errors
    ///
    /// Returns an error for malformed run-length streams.
    pub fn decode_channel(
        &self,
        channel: &ChannelData,
        n_samples: usize,
    ) -> Result<Vec<f64>, CompressError> {
        let mut scratch = crate::engine::DecodeScratch::new();
        let mut out = Vec::new();
        self.decode_channel_into(channel, n_samples, &mut scratch, &mut out)?;
        Ok(out)
    }

    /// Zero-allocation overlap-add decode into caller buffers: `out` is
    /// cleared, zero-filled to `n_samples` and accumulated in place, with
    /// per-frame staging running through `scratch`. Bit-exact with
    /// [`OverlapCompressor::decode_channel`] (which now wraps this).
    ///
    /// # Errors
    ///
    /// Returns an error for malformed run-length streams.
    pub fn decode_channel_into(
        &self,
        channel: &ChannelData,
        n_samples: usize,
        scratch: &mut crate::engine::DecodeScratch,
        out: &mut Vec<f64>,
    ) -> Result<(), CompressError> {
        let windows = match channel {
            ChannelData::Windows(w) => w,
            _ => return Err(CompressError::UnsupportedWindow(0)),
        };
        let decoder = RleDecoder::new();
        out.clear();
        out.resize(n_samples, 0.0);
        for (frame, words) in windows.iter().enumerate() {
            let (coeffs, fcoeffs, time) = scratch.lapped_buffers(self.ws);
            decoder.decode_window_into(words, coeffs)?;
            for (f, &c) in fcoeffs.iter_mut().zip(coeffs.iter()) {
                *f = f64::from(c) / self.scale;
            }
            self.dct.inverse_into(fcoeffs, time);
            let start = frame as isize * self.hop as isize - self.hop as isize;
            for (k, &v) in time.iter().enumerate() {
                let idx = start + k as isize;
                if idx >= 0 && (idx as usize) < n_samples {
                    out[idx as usize] += v * self.window[k];
                }
            }
        }
        Ok(())
    }
}

/// Measures the boundary-localized error of a codec: the mean squared
/// error restricted to samples within `margin` of a window boundary.
pub fn boundary_mse(original: &Waveform, restored: &Waveform, ws: usize, margin: usize) -> f64 {
    let mut acc = 0.0;
    let mut count = 0usize;
    for (k, (a, b)) in original.i().iter().zip(restored.i()).enumerate() {
        let pos = k % ws;
        let near = pos < margin || pos + margin >= ws;
        if near {
            acc += (a - b) * (a - b);
            count += 1;
        }
    }
    acc / count.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compress::{Compressor, Variant};
    use compaqt_pulse::shapes::{Drag, PulseShape};

    fn pulse() -> Waveform {
        Drag::new(136, 0.5, 34.0, 0.2).to_waveform("X", 4.54)
    }

    #[test]
    fn sqrt_hann_satisfies_cola() {
        // The squared window must overlap-add to exactly 1 at 50% hop.
        let c = OverlapCompressor::new(8).unwrap();
        for n in 0..4 {
            let sum = c.window[n] * c.window[n] + c.window[n + 4] * c.window[n + 4];
            assert!((sum - 1.0).abs() < 1e-12, "position {n}: {sum}");
        }
    }

    #[test]
    fn zero_threshold_reconstructs_perfectly() {
        let wf = pulse();
        let c = OverlapCompressor::new(8).unwrap().with_threshold(0.0);
        let z = c.compress(&wf).unwrap();
        let back = z.decompress().unwrap();
        // Only coefficient quantization remains.
        assert!(wf.mse(&back) < 1e-6, "mse {:e}", wf.mse(&back));
    }

    #[test]
    fn overlap_reduces_boundary_error_at_ws8() {
        let wf = pulse();
        let plain = Compressor::new(Variant::DctW { ws: 8 }).with_threshold(0.04);
        let lapped = OverlapCompressor::new(8).unwrap().with_threshold(0.04);
        let plain_back = plain.compress(&wf).unwrap().decompress().unwrap();
        let lapped_back = lapped.compress(&wf).unwrap().decompress().unwrap();
        let b_plain = boundary_mse(&wf, &plain_back, 8, 1);
        let b_lapped = boundary_mse(&wf, &lapped_back, 8, 1);
        assert!(b_lapped < b_plain, "lapped boundary MSE {b_lapped:e} vs plain {b_plain:e}");
    }

    #[test]
    fn overlap_costs_compression_ratio() {
        let wf = pulse();
        let plain = Compressor::new(Variant::DctW { ws: 8 }).compress(&wf).unwrap();
        let lapped = OverlapCompressor::new(8).unwrap().compress(&wf).unwrap();
        assert!(lapped.ratio().ratio() < plain.ratio().ratio());
    }

    #[test]
    fn rejects_unsupported_window() {
        assert!(OverlapCompressor::new(10).is_err());
    }

    #[test]
    fn into_path_is_bit_exact_with_allocating_path() {
        let wf = pulse();
        let c = OverlapCompressor::new(8).unwrap();
        let z = c.compress(&wf).unwrap();
        let alloc = c.decode_channel(&z.i, z.n_samples).unwrap();
        let mut scratch = crate::engine::DecodeScratch::new();
        let mut out = Vec::new();
        c.decode_channel_into(&z.i, z.n_samples, &mut scratch, &mut out).unwrap();
        assert_eq!(alloc, out);
        // Scratch and buffer survive reuse on the other channel.
        let alloc_q = c.decode_channel(&z.q, z.n_samples).unwrap();
        c.decode_channel_into(&z.q, z.n_samples, &mut scratch, &mut out).unwrap();
        assert_eq!(alloc_q, out);
    }

    #[test]
    fn long_flat_tops_still_compress() {
        use compaqt_pulse::shapes::GaussianSquare;
        let wf = GaussianSquare::new(1362, 0.3, 40.0, 1020).to_waveform("CR", 4.54);
        let z = OverlapCompressor::new(16).unwrap().compress(&wf).unwrap();
        assert!(z.ratio().ratio() > 2.0, "got {}", z.ratio());
        assert!(wf.mse(&z.decompress().unwrap()) < 1e-4);
    }
}
