//! Library-level compression statistics.
//!
//! The paper's compressibility results aggregate over whole pulse
//! libraries: per-waveform ratios (Figure 7a, Figure 14), overall ratios
//! (Figure 7b, Table VII), distortion (Figure 7c) and the
//! samples-per-window histogram that sizes the uniform-width memory
//! (Figure 11).

use crate::compress::{CompressedWaveform, Compressor};
use crate::store::Store;
use crate::CompressError;
use compaqt_dsp::metrics::{CompressionRatio, Summary};
use compaqt_pulse::library::{GateId, GateKind, PulseLibrary};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Compression outcome for one waveform.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WaveformReport {
    /// Which gate the waveform implements.
    pub gate: GateId,
    /// Compression ratio.
    pub ratio: f64,
    /// Reconstruction MSE.
    pub mse: f64,
    /// Worst-case stored words in any window.
    pub worst_case_window_words: usize,
    /// The compressed stream.
    pub compressed: CompressedWaveform,
}

/// Compression outcome for a whole pulse library.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LibraryReport {
    /// Per-waveform outcomes (library order).
    pub waveforms: Vec<WaveformReport>,
    /// Overall ratio (total old size / total new size).
    pub overall: CompressionRatio,
}

impl LibraryReport {
    /// Min/avg/max summary of per-waveform ratios (Table VII rows).
    pub fn ratio_summary(&self) -> Summary {
        Summary::of(self.waveforms.iter().map(|w| w.ratio)).expect("library reports are non-empty")
    }

    /// Mean reconstruction MSE over all waveforms (Figure 7c).
    pub fn mean_mse(&self) -> f64 {
        let n = self.waveforms.len().max(1);
        self.waveforms.iter().map(|w| w.mse).sum::<f64>() / n as f64
    }

    /// Histogram of stored words per window across all waveforms
    /// (Figure 11): `words -> window count`.
    pub fn samples_per_window_histogram(&self) -> BTreeMap<usize, usize> {
        let mut hist = BTreeMap::new();
        for report in &self.waveforms {
            for count in report
                .compressed
                .i
                .window_word_counts()
                .into_iter()
                .chain(report.compressed.q.window_word_counts())
            {
                *hist.entry(count).or_insert(0) += 1;
            }
        }
        hist
    }

    /// Mean ratio over waveforms of one gate kind (the per-gate bars of
    /// Figure 14).
    pub fn mean_ratio_of_kind(&self, kind: &GateKind) -> Option<f64> {
        let values: Vec<f64> =
            self.waveforms.iter().filter(|w| &w.gate.kind == kind).map(|w| w.ratio).collect();
        if values.is_empty() {
            None
        } else {
            Some(values.iter().sum::<f64>() / values.len() as f64)
        }
    }

    /// Consumes the report into a serving-path [`Store`], moving each
    /// compressed stream in without re-encoding or cloning — the bridge
    /// from the compile side (this report) to runtime single-gate
    /// fetches ([`Store::fetch_into`] / [`Store::fetch_cached`]).
    ///
    /// # Errors
    ///
    /// Returns [`CompressError`] if a stream carries a variant no
    /// decompression engine can be built for (never the case for
    /// reports produced by [`compress_library`]).
    pub fn into_store(self, config: crate::store::StoreConfig) -> Result<Store, CompressError> {
        Store::from_entries(self.waveforms.into_iter().map(|w| (w.gate, w.compressed)), config)
    }

    /// Mean ratio over waveforms of one gate kind touching qubit `q`
    /// (Figure 14 averages CX ratios over all CNOTs a qubit participates
    /// in).
    pub fn mean_ratio_of_kind_on_qubit(&self, kind: &GateKind, q: u16) -> Option<f64> {
        let values: Vec<f64> = self
            .waveforms
            .iter()
            .filter(|w| &w.gate.kind == kind && w.gate.qubits.contains(&q))
            .map(|w| w.ratio)
            .collect();
        if values.is_empty() {
            None
        } else {
            Some(values.iter().sum::<f64>() / values.len() as f64)
        }
    }
}

/// Compresses every waveform of a library and aggregates the results.
///
/// The loop reuses one [`EncodeScratch`] and one [`DecodeScratch`]
/// across the whole library (cached transform plans, staging buffers),
/// so per-window work allocates nothing; only the per-waveform
/// compressed streams the report owns are allocated.
///
/// [`EncodeScratch`]: crate::engine::EncodeScratch
/// [`DecodeScratch`]: crate::engine::DecodeScratch
///
/// # Errors
///
/// Propagates the first compression error (none occur for supported
/// window sizes).
pub fn compress_library(
    library: &PulseLibrary,
    compressor: &Compressor,
) -> Result<LibraryReport, CompressError> {
    let engine = crate::engine::DecompressionEngine::for_variant(compressor.variant())?;
    let mut enc = crate::engine::EncodeScratch::new();
    let mut dec = crate::engine::DecodeScratch::new();
    let (mut i_buf, mut q_buf) = (Vec::new(), Vec::new());
    let mut waveforms = Vec::with_capacity(library.len());
    let mut overall: Option<CompressionRatio> = None;
    for (gate, wf) in library.iter() {
        let mut compressed = CompressedWaveform::empty();
        compressor.compress_into(wf, &mut enc, &mut compressed)?;
        engine.decompress_into(&compressed, &mut dec, &mut i_buf, &mut q_buf)?;
        let mse = (compaqt_dsp::metrics::mse(wf.i(), &i_buf)
            + compaqt_dsp::metrics::mse(wf.q(), &q_buf))
            / 2.0;
        let ratio = compressed.ratio();
        overall = Some(match overall {
            Some(acc) => acc.combine(&ratio),
            None => ratio,
        });
        waveforms.push(WaveformReport {
            gate: gate.clone(),
            ratio: ratio.ratio(),
            mse,
            worst_case_window_words: compressed.worst_case_window_words(),
            compressed,
        });
    }
    let overall = overall.expect("library must be non-empty");
    Ok(LibraryReport { waveforms, overall })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compress::Variant;
    use compaqt_pulse::device::Device;
    use compaqt_pulse::vendor::Vendor;

    fn report(ws: usize) -> LibraryReport {
        let device = Device::synthesize(Vendor::Ibm, 5, 0xBEEF);
        let lib = device.pulse_library();
        compress_library(&lib, &Compressor::new(Variant::IntDctW { ws })).unwrap()
    }

    #[test]
    fn overall_ratio_exceeds_4x() {
        // Table VII: int-DCT-W (WS=16) averages ~6.5x; even small devices
        // should clear 4x.
        let r = report(16);
        assert!(r.overall.ratio() > 4.0, "got {}", r.overall.ratio());
    }

    #[test]
    fn two_qubit_gates_compress_better_than_single() {
        // "measurement and 2Q gates are longer and more compressible than
        // 1Q gates" (Section IV-D).
        let r = report(16);
        let sx = r.mean_ratio_of_kind(&GateKind::Sx).unwrap();
        let cx = r.mean_ratio_of_kind(&GateKind::Cx).unwrap();
        assert!(cx > sx, "CX {cx} vs SX {sx}");
    }

    #[test]
    fn mse_is_in_paper_band() {
        // Figure 7c: MSE between 1e-7 and 1e-5.
        let r = report(16);
        let mse = r.mean_mse();
        assert!(mse < 5e-5, "got {mse:e}");
        assert!(mse > 1e-12, "suspiciously perfect: {mse:e}");
    }

    #[test]
    fn histogram_is_dominated_by_small_windows() {
        // Figure 11: the overwhelming majority of windows store <= 3
        // words including the codeword.
        let r = report(16);
        let hist = r.samples_per_window_histogram();
        let total: usize = hist.values().sum();
        let small: usize = hist.iter().filter(|(&k, _)| k <= 3).map(|(_, &v)| v).sum();
        assert!(
            small as f64 / total as f64 > 0.85,
            "small-window fraction {}",
            small as f64 / total as f64
        );
    }

    #[test]
    fn per_qubit_kind_filter_works() {
        let r = report(16);
        assert!(r.mean_ratio_of_kind_on_qubit(&GateKind::X, 0).is_some());
        assert!(r.mean_ratio_of_kind_on_qubit(&GateKind::X, 99).is_none());
    }

    #[test]
    fn summary_spans_are_sane() {
        let r = report(16);
        let s = r.ratio_summary();
        assert!(s.min <= s.avg && s.avg <= s.max);
        assert!(s.min > 1.0, "everything compresses at least a little");
    }
}
