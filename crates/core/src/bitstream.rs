//! Binary memory images: serializing compressed libraries for the
//! controller.
//!
//! The COMPAQT flow ends with the host transferring the compressed pulse
//! library into controller memory (Figure 6: "Compressed Pulse Library"
//! -> "Compressed Waveform Memory"). This module defines that wire
//! format: a compact binary image with one record per waveform — header,
//! window structure, and the packed 16-bit coded words the hardware
//! consumes directly.
//!
//! Format (little endian):
//!
//! ```text
//! image  := magic:u32 version:u16 count:u16 record*
//! record := name_len:u16 name:utf8 variant:u8 ws:u16 n_samples:u32
//!           rate_mhz:u32 channel channel
//! channel:= kind:u8 payload
//!   kind 0 (windows): n_windows:u32 (words_len:u16 word:u16*)*
//!   kind 1 (delta)  : base:i16 bits:u8 n:u32 delta:i16*
//!   kind 2 (raw)    : n:u32 sample:i16*
//! ```

use crate::compress::{ChannelData, CompressedWaveform, Variant};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use compaqt_dsp::rle::CodedWord;
use compaqt_pulse::library::GateId;
use std::fmt;

/// Magic number identifying a COMPAQT memory image.
pub const MAGIC: u32 = 0xC0_4D_50_51; // "COMPQ"-ish

/// Image format version.
pub const VERSION: u16 = 1;

/// Errors while parsing a memory image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ImageError {
    /// The magic number or version did not match.
    BadHeader,
    /// The buffer ended mid-record.
    Truncated,
    /// A field held an invalid value.
    Invalid(&'static str),
}

impl fmt::Display for ImageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImageError::BadHeader => write!(f, "not a COMPAQT memory image"),
            ImageError::Truncated => write!(f, "image truncated"),
            ImageError::Invalid(what) => write!(f, "invalid field: {what}"),
        }
    }
}

impl std::error::Error for ImageError {}

fn encode_variant(v: Variant) -> (u8, u16) {
    match v {
        Variant::Delta => (0, 0),
        Variant::DctN => (1, 0),
        Variant::DctW { ws } => (2, ws as u16),
        Variant::IntDctW { ws } => (3, ws as u16),
    }
}

fn decode_variant(tag: u8, ws: u16) -> Result<Variant, ImageError> {
    Ok(match tag {
        0 => Variant::Delta,
        1 => Variant::DctN,
        2 => Variant::DctW { ws: ws as usize },
        3 => Variant::IntDctW { ws: ws as usize },
        _ => return Err(ImageError::Invalid("variant tag")),
    })
}

fn put_channel(buf: &mut BytesMut, channel: &ChannelData) {
    match channel {
        ChannelData::Windows(windows) => {
            buf.put_u8(0);
            buf.put_u32_le(windows.len() as u32);
            for win in windows {
                buf.put_u16_le(win.len() as u16);
                for w in win {
                    buf.put_u16_le(w.pack());
                }
            }
        }
        ChannelData::Delta { base, bits, deltas } => {
            buf.put_u8(1);
            buf.put_i16_le(*base);
            buf.put_u8(*bits as u8);
            buf.put_u32_le(deltas.len() as u32);
            for &d in deltas {
                buf.put_i16_le(d);
            }
        }
        ChannelData::Raw(samples) => {
            buf.put_u8(2);
            buf.put_u32_le(samples.len() as u32);
            for &s in samples {
                buf.put_i16_le(s);
            }
        }
    }
}

fn need(buf: &Bytes, n: usize) -> Result<(), ImageError> {
    if buf.remaining() < n {
        Err(ImageError::Truncated)
    } else {
        Ok(())
    }
}

fn take_channel(buf: &mut Bytes) -> Result<ChannelData, ImageError> {
    need(buf, 1)?;
    match buf.get_u8() {
        0 => {
            need(buf, 4)?;
            let n_windows = buf.get_u32_le() as usize;
            let mut windows = Vec::with_capacity(n_windows.min(1 << 20));
            for _ in 0..n_windows {
                need(buf, 2)?;
                let len = buf.get_u16_le() as usize;
                need(buf, 2 * len)?;
                let words: Vec<CodedWord> =
                    (0..len).map(|_| CodedWord::unpack(buf.get_u16_le())).collect();
                windows.push(words);
            }
            Ok(ChannelData::Windows(windows))
        }
        1 => {
            need(buf, 2 + 1 + 4)?;
            let base = buf.get_i16_le();
            let bits = u32::from(buf.get_u8());
            let n = buf.get_u32_le() as usize;
            need(buf, 2 * n)?;
            let deltas = (0..n).map(|_| buf.get_i16_le()).collect();
            Ok(ChannelData::Delta { base, bits, deltas })
        }
        2 => {
            need(buf, 4)?;
            let n = buf.get_u32_le() as usize;
            need(buf, 2 * n)?;
            let samples = (0..n).map(|_| buf.get_i16_le()).collect();
            Ok(ChannelData::Raw(samples))
        }
        _ => Err(ImageError::Invalid("channel kind")),
    }
}

/// Serializes a compressed library into a controller memory image.
pub fn write_image(entries: &[(GateId, CompressedWaveform)]) -> Bytes {
    write_image_records(entries.len(), entries.iter().map(|(g, z)| (g, z)))
}

fn write_image_records<'a>(
    count: usize,
    entries: impl Iterator<Item = (&'a GateId, &'a CompressedWaveform)>,
) -> Bytes {
    let mut buf = BytesMut::with_capacity(4096);
    put_image_header(&mut buf, count);
    for (gate, z) in entries {
        let name = format!("{gate}");
        put_record(&mut buf, &name, z);
    }
    buf.freeze()
}

/// Serializes the image header (shared by every image builder so the
/// byte-identical contract between them cannot drift).
fn put_image_header(buf: &mut BytesMut, count: usize) {
    buf.put_u32_le(MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u16_le(count as u16);
}

/// Serializes one record (display name + compressed streams).
fn put_record(buf: &mut BytesMut, name: &str, z: &CompressedWaveform) {
    buf.put_u16_le(name.len() as u16);
    buf.put_slice(name.as_bytes());
    let (tag, ws) = encode_variant(z.variant);
    buf.put_u8(tag);
    buf.put_u16_le(ws);
    buf.put_u32_le(z.n_samples as u32);
    buf.put_u32_le((z.sample_rate_gs * 1000.0).round() as u32);
    put_channel(buf, &z.i);
    put_channel(buf, &z.q);
}

/// Sequential calibration-cycle pipeline: compresses a pulse library
/// waveform by waveform and serializes each stream into the image as it
/// is produced. One [`EncodeScratch`] and one reused
/// [`CompressedWaveform`] slot carry all working memory, so peak memory
/// is one compressed waveform plus the image bytes — the right shape for
/// a memory-constrained host. Byte-identical to
/// [`compress_image_par`].
///
/// [`EncodeScratch`]: crate::engine::EncodeScratch
///
/// # Errors
///
/// Propagates compression errors (none occur for supported window
/// sizes).
pub fn compress_image(
    library: &compaqt_pulse::library::PulseLibrary,
    compressor: &crate::compress::Compressor,
) -> Result<Bytes, crate::CompressError> {
    let mut scratch = crate::engine::EncodeScratch::new();
    let mut z = CompressedWaveform::empty();
    let mut buf = BytesMut::with_capacity(4096);
    put_image_header(&mut buf, library.len());
    let mut name = String::new();
    for (gate, wf) in library.iter() {
        compressor.compress_into(wf, &mut scratch, &mut z)?;
        name.clear();
        use std::fmt::Write;
        write!(name, "{gate}").expect("formatting into a String cannot fail");
        put_record(&mut buf, &name, &z);
    }
    Ok(buf.freeze())
}

/// One-shot calibration-cycle pipeline: compresses a whole pulse library
/// in parallel ([`crate::batch::compress_library_par`]) and serializes
/// the streams into a controller memory image. This is the path a host
/// runs at the end of every calibration cycle for 100+ qubit machines.
///
/// # Errors
///
/// Propagates compression errors (none occur for supported window
/// sizes).
pub fn compress_image_par(
    library: &compaqt_pulse::library::PulseLibrary,
    compressor: &crate::compress::Compressor,
) -> Result<Bytes, crate::CompressError> {
    let report = crate::batch::compress_library_par(library, compressor)?;
    Ok(write_image_records(
        report.waveforms.len(),
        report.waveforms.iter().map(|w| (&w.gate, &w.compressed)),
    ))
}

/// A parsed record: the gate's display name and its compressed waveform.
#[derive(Debug, Clone, PartialEq)]
pub struct ImageRecord {
    /// Display name of the gate (e.g. `"X(q3)"`).
    pub name: String,
    /// The compressed stream.
    pub waveform: CompressedWaveform,
}

/// Parses a controller memory image.
///
/// # Errors
///
/// Returns [`ImageError`] on malformed input; never panics on untrusted
/// bytes.
pub fn read_image(mut buf: Bytes) -> Result<Vec<ImageRecord>, ImageError> {
    need(&buf, 8)?;
    if buf.get_u32_le() != MAGIC {
        return Err(ImageError::BadHeader);
    }
    if buf.get_u16_le() != VERSION {
        return Err(ImageError::BadHeader);
    }
    let count = buf.get_u16_le() as usize;
    let mut records = Vec::with_capacity(count);
    for _ in 0..count {
        need(&buf, 2)?;
        let name_len = buf.get_u16_le() as usize;
        need(&buf, name_len)?;
        let name_bytes = buf.copy_to_bytes(name_len);
        let name =
            String::from_utf8(name_bytes.to_vec()).map_err(|_| ImageError::Invalid("name"))?;
        need(&buf, 1 + 2 + 4 + 4)?;
        let tag = buf.get_u8();
        let ws = buf.get_u16_le();
        let n_samples = buf.get_u32_le() as usize;
        let rate_mhz = buf.get_u32_le();
        if n_samples == 0 {
            return Err(ImageError::Invalid("sample count"));
        }
        let variant = decode_variant(tag, ws)?;
        let i = take_channel(&mut buf)?;
        let q = take_channel(&mut buf)?;
        records.push(ImageRecord {
            name: name.clone(),
            waveform: CompressedWaveform {
                name,
                variant,
                n_samples,
                sample_rate_gs: f64::from(rate_mhz) / 1000.0,
                i,
                q,
            },
        });
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compress::Compressor;
    use compaqt_pulse::device::Device;
    use compaqt_pulse::vendor::Vendor;

    fn sample_entries() -> Vec<(GateId, CompressedWaveform)> {
        let device = Device::synthesize(Vendor::Ibm, 3, 0xB17);
        let lib = device.pulse_library();
        let c = Compressor::new(Variant::IntDctW { ws: 16 });
        lib.iter().map(|(g, wf)| (g.clone(), c.compress(wf).unwrap())).collect()
    }

    #[test]
    fn image_round_trips_bit_exactly() {
        let entries = sample_entries();
        let image = write_image(&entries);
        let records = read_image(image).unwrap();
        assert_eq!(records.len(), entries.len());
        for ((_, original), record) in entries.iter().zip(&records) {
            assert_eq!(&record.waveform, original);
        }
    }

    #[test]
    fn decompression_works_after_round_trip() {
        let entries = sample_entries();
        let records = read_image(write_image(&entries)).unwrap();
        for r in records {
            assert!(r.waveform.decompress().is_ok(), "{}", r.name);
        }
    }

    #[test]
    fn delta_and_raw_channels_round_trip() {
        let device = Device::synthesize(Vendor::Ibm, 2, 0xDE17A);
        let lib = device.pulse_library();
        let c = Compressor::new(Variant::Delta);
        let entries: Vec<(GateId, CompressedWaveform)> =
            lib.iter().map(|(g, wf)| (g.clone(), c.compress(wf).unwrap())).collect();
        let records = read_image(write_image(&entries)).unwrap();
        for ((_, original), record) in entries.iter().zip(&records) {
            assert_eq!(&record.waveform, original);
        }
    }

    #[test]
    fn parallel_image_pipeline_matches_sequential() {
        let device = Device::synthesize(Vendor::Ibm, 3, 0xB17);
        let lib = device.pulse_library();
        let c = Compressor::new(Variant::IntDctW { ws: 16 });
        let sequential = write_image(&sample_entries());
        let parallel = compress_image_par(&lib, &c).unwrap();
        assert_eq!(sequential.as_ref(), parallel.as_ref(), "images must be byte-identical");
        // The streaming single-scratch builder produces the same bytes.
        let streaming = compress_image(&lib, &c).unwrap();
        assert_eq!(sequential.as_ref(), streaming.as_ref(), "streaming image must match");
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u16_le(VERSION);
        buf.put_u16_le(0);
        assert_eq!(read_image(buf.freeze()), Err(ImageError::BadHeader));
    }

    #[test]
    fn truncated_images_error_cleanly() {
        let entries = sample_entries();
        let image = write_image(&entries);
        for cut in [0usize, 3, 9, 17, image.len() / 2, image.len() - 1] {
            let partial = image.slice(0..cut);
            assert!(read_image(partial).is_err(), "cut at {cut} parsed");
        }
    }

    #[test]
    fn fuzzed_garbage_never_panics() {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xF422);
        for _ in 0..200 {
            let len = rng.random_range(0..512);
            let mut garbage = vec![0u8; len];
            for b in &mut garbage {
                *b = rng.random();
            }
            // Must return an error (or an empty parse), never panic.
            let _ = read_image(Bytes::from(garbage));
        }
    }

    #[test]
    fn image_size_reflects_compression() {
        let entries = sample_entries();
        let image = write_image(&entries);
        let uncompressed: usize =
            entries.iter().map(|(_, z)| z.n_samples * crate::compress::SAMPLE_BYTES).sum();
        assert!(image.len() < uncompressed / 3, "image {} vs raw {uncompressed}", image.len());
    }
}
