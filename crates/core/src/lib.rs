//! # compaqt-core
//!
//! The COMPAQT core: compile-time waveform compression, the compressed
//! banked waveform memory, and a bit-exact model of the hardware
//! decompression engine (Maurya & Tannu, MICRO 2022, Sections IV-V).
//!
//! Waveform memory is read-only during execution — it is (re)written only
//! at the end of a calibration cycle. COMPAQT exploits this: compression
//! runs in software with no hardware cost, while decompression is a small
//! fixed-function pipeline (run-length decoder + integer IDCT) between the
//! memory and the DAC. Expanding a handful of stored words into a full
//! window of DAC samples multiplies the effective memory bandwidth.
//!
//! * [`compress`] — the compression pipelines: `Delta`, `DCT-N`, `DCT-W`
//!   and `int-DCT-W` variants, plus fidelity-aware thresholding
//!   (Algorithm 1). Allocating and zero-allocation (`compress_into`)
//!   paths, bit-exact with each other.
//! * [`engine`] — the two-stage decompression pipeline model (Figure 10)
//!   with cycle and operation accounting, plus the caller-owned
//!   `EncodeScratch`/`DecodeScratch` working memory both codec
//!   directions reuse.
//! * [`memory`] — banked compressed waveform memory with uniform
//!   worst-case window width (Figure 12).
//! * [`adaptive`] — IDCT-bypass compression of flat-top waveforms
//!   (Figure 13).
//! * [`stats`] — library-level compression statistics (Figures 7/11/14,
//!   Tables VII/IX).
//! * [`store`] — the serving path: a sharded concurrent compressed
//!   waveform store with pooled decode scratch and a hot set of decoded
//!   waveforms (runtime single-gate fetches, the deployment model of
//!   Section IV-A).
//!
//! # Example
//!
//! ```
//! use compaqt_core::compress::{Compressor, Variant};
//! use compaqt_pulse::shapes::{Drag, PulseShape};
//!
//! let pulse = Drag::new(136, 0.5, 34.0, 0.2).to_waveform("X(q0)", 4.54);
//! let compressed = Compressor::new(Variant::IntDctW { ws: 16 }).compress(&pulse)?;
//! let restored = compressed.decompress()?;
//! assert!(pulse.mse(&restored) < 5e-5);
//! assert!(compressed.ratio().ratio() > 4.0);
//! # Ok::<(), compaqt_core::CompressError>(())
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod adaptive;
pub mod batch;
pub mod bitstream;
pub mod calibration;
pub mod compress;
pub mod engine;
pub mod memory;
pub mod overlap;
pub mod sequencer;
pub mod stats;
pub mod store;

pub use compress::{CompressedWaveform, Compressor, Variant};
pub use engine::{DecodeScratch, DecompressionEngine, EngineStats};
pub use store::{Store, StoreConfig, StoreError, StoreStats};

use std::fmt;

/// Errors produced by the compression/decompression pipelines.
#[derive(Debug, Clone, PartialEq)]
pub enum CompressError {
    /// The requested window size is not supported by the transform.
    UnsupportedWindow(usize),
    /// Algorithm 1 could not reach the target error before the threshold
    /// floor (the pulse must be stored uncompressed).
    TargetUnreachable {
        /// The requested maximum MSE.
        target_mse: f64,
    },
    /// A run-length stream was malformed.
    Rle(compaqt_dsp::rle::RleError),
    /// A compressed stream's metadata is inconsistent with its payload —
    /// hostile or corrupted input that would otherwise drive oversized
    /// allocations or impossible decodes.
    MalformedStream {
        /// What the consistency check found.
        reason: &'static str,
    },
    /// A shared engine was handed a stream compressed with a different
    /// variant (segmented decodes require an exact match).
    EngineMismatch {
        /// The stream's variant.
        expected: Variant,
        /// The engine's variant.
        got: Variant,
    },
    /// The waveform has no flat-top plateau long enough for adaptive
    /// compression.
    NoPlateau,
}

impl fmt::Display for CompressError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompressError::UnsupportedWindow(ws) => {
                write!(f, "window size {ws} is not supported (use 4, 8, 16, 32 or 64)")
            }
            CompressError::TargetUnreachable { target_mse } => {
                write!(f, "fidelity-aware compression could not reach target MSE {target_mse:e}")
            }
            CompressError::Rle(e) => write!(f, "run-length stream error: {e}"),
            CompressError::MalformedStream { reason } => {
                write!(f, "malformed compressed stream: {reason}")
            }
            CompressError::EngineMismatch { expected, got } => {
                write!(
                    f,
                    "engine decodes {} but the stream was compressed with {}",
                    got.label(),
                    expected.label()
                )
            }
            CompressError::NoPlateau => {
                write!(f, "waveform has no flat-top plateau for adaptive compression")
            }
        }
    }
}

impl std::error::Error for CompressError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CompressError::Rle(e) => Some(e),
            _ => None,
        }
    }
}

impl From<compaqt_dsp::rle::RleError> for CompressError {
    fn from(e: compaqt_dsp::rle::RleError) -> Self {
        CompressError::Rle(e)
    }
}
