//! The zero-copy container reader: validate everything once, then
//! borrow forever.
//!
//! [`Reader::open`] accepts any [`ContainerSource`] — an owned
//! [`Bytes`] buffer, a caller-borrowed `&[u8]` region, or a read-only
//! memory map of a container file — and performs the structural audit
//! described in the [crate docs](crate): header, section sizes,
//! sorted/contiguous index, decodable variants, **before any payload
//! is parsed**. Payload CRC-32 verification is governed by
//! [`ReaderOptions`]: [`ValidationMode::Eager`] (the default, and the
//! historical [`Reader::new`] behaviour) sweeps every payload at open;
//! [`ValidationMode::LazyCrc`] defers each entry's check to first
//! touch and caches the verdict in an atomic bitmap, so opening a
//! larger-than-RAM mapped library costs O(index), not O(payload).
//!
//! Afterwards every access is served from the one backing buffer:
//! [`Entry::payload_slice`] is a borrowed view,
//! [`Reader::fetch_into`] parses a payload into a reusable stream slot
//! and decodes it through a caller-owned [`DecodeScratch`] (zero heap
//! allocations in the steady state), and [`Reader::into_store`] bulk
//! loads a serving [`Store`] by moving freshly parsed streams straight
//! in.

use crate::format::{
    decode_variant, need, take_adaptive, take_gate, take_overlap, take_plain_into, PayloadKind,
    SlotSpares, HEADER_BYTES, MIN_ENTRY_BYTES,
};
use crate::source::{ContainerSource, ReaderOptions, ValidationMode};
use crate::{crc32::crc32, ContainerError, MAGIC, VERSION};
use bytes::{Buf, Bytes};
use compaqt_core::adaptive::AdaptiveCompressed;
use compaqt_core::compress::{CompressedWaveform, Variant};
use compaqt_core::engine::{DecodeScratch, DecompressionEngine, EngineStats};
use compaqt_core::overlap::OverlapCompressed;
use compaqt_core::store::{Store, StoreConfig};
use compaqt_obs::{Collect, Snapshot, TraceKind, TraceRing};
use compaqt_pulse::library::GateId;
use compaqt_pulse::waveform::Waveform;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// One validated index entry (the payload stays unparsed bytes).
#[derive(Debug)]
struct IndexEntry {
    gate: GateId,
    kind: PayloadKind,
    variant: Variant,
    offset: u64,
    len: u32,
    crc: u32,
}

/// A parsed stream payload — whichever compressed representation the
/// entry holds.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamPayload {
    /// A plain compressed stream (store-servable).
    Plain(CompressedWaveform),
    /// An overlapped-window stream.
    Overlap(OverlapCompressed),
    /// An adaptive IDCT-bypass segment list.
    Adaptive(AdaptiveCompressed),
}

impl StreamPayload {
    /// The waveform name recorded in the stream.
    pub fn name(&self) -> &str {
        match self {
            StreamPayload::Plain(z) => &z.name,
            StreamPayload::Overlap(z) => &z.name,
            StreamPayload::Adaptive(z) => &z.name,
        }
    }

    /// The original per-channel sample count the stream claims.
    pub fn n_samples(&self) -> usize {
        match self {
            StreamPayload::Plain(z) => z.n_samples,
            StreamPayload::Overlap(z) => z.n_samples,
            StreamPayload::Adaptive(z) => z.n_samples,
        }
    }

    /// Decompresses the stream through its codec's own decoder.
    ///
    /// # Errors
    ///
    /// Propagates codec errors for malformed coefficient streams.
    pub fn decompress(&self) -> Result<Waveform, ContainerError> {
        match self {
            StreamPayload::Plain(z) => z.decompress().map_err(ContainerError::Codec),
            StreamPayload::Overlap(z) => z.decompress().map_err(ContainerError::Codec),
            StreamPayload::Adaptive(z) => {
                z.decompress().map(|(wf, _)| wf).map_err(ContainerError::Codec)
            }
        }
    }
}

/// Caller-owned working memory for [`Reader::fetch_into`]: a reusable
/// stream slot (parsed payloads land in its buffers), the spare-window
/// pool that preserves inner capacities across entries of different
/// window counts, and the decode scratch the engine runs through.
/// After one warm-up pass over the entries a process serves, repeat
/// fetches perform **zero heap allocations** (enforced in the
/// `alloc_regression` integration test).
#[derive(Debug)]
pub struct ContainerScratch {
    slot: CompressedWaveform,
    spares: SlotSpares,
    decode: DecodeScratch,
}

impl Default for ContainerScratch {
    fn default() -> Self {
        ContainerScratch {
            slot: CompressedWaveform::empty(),
            spares: SlotSpares::default(),
            decode: DecodeScratch::new(),
        }
    }
}

impl ContainerScratch {
    /// Creates an empty scratch (buffers grow on first use).
    pub fn new() -> Self {
        ContainerScratch::default()
    }
}

/// A validated CWL container over one backing source. See the [module
/// docs](self).
///
/// The lifetime `'src` is the borrow of a
/// [`ContainerSource::Borrowed`] region; owned and mapped sources
/// yield `Reader<'static>`, which is what the legacy constructors
/// ([`Reader::new`], [`Reader::from_vec`]) return.
pub struct Reader<'src> {
    source: ContainerSource<'src>,
    /// Byte offset of the payload section in the source.
    payload_base: usize,
    /// Library-wide DAC rate from the header (`None` when mixed).
    sample_rate_gs: Option<f64>,
    index: Vec<IndexEntry>,
    /// One decompression engine per distinct plain/adaptive variant,
    /// built (and thereby validated) at construction.
    engines: Vec<(Variant, DecompressionEngine)>,
    /// Payload integrity policy chosen at open.
    validation: ValidationMode,
    /// Lazy-mode verdict bitmaps, one bit per entry, one `u64` word
    /// per 64 entries, preallocated at open (so first touch allocates
    /// nothing). `crc_ok` bit set ⇒ the payload hashed clean once and
    /// the bytes are immutable; `crc_bad` bit set ⇒ it is damaged and
    /// every access fails from the cached verdict without re-hashing.
    /// Both empty in [`ValidationMode::Eager`].
    crc_ok: Vec<AtomicU64>,
    crc_bad: Vec<AtomicU64>,
    /// Wall nanoseconds [`Reader::open`] spent validating and indexing
    /// this container — the observable cost of the open-time audit
    /// (O(payload) eager, O(index) lazy).
    open_ns: u64,
    /// Optional event ring ([`Reader::attach_trace`]): lazy-mode
    /// first-touch CRC failures are pushed to it. One atomic load on
    /// the failure path only; clean reads never touch it.
    trace: OnceLock<Arc<TraceRing>>,
}

impl fmt::Debug for Reader<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Reader")
            .field("entries", &self.index.len())
            .field("bytes", &self.source.len())
            .field("source", &self.source.kind_name())
            .field("validation", &self.validation)
            .field("sample_rate_gs", &self.sample_rate_gs)
            .finish_non_exhaustive()
    }
}

impl Reader<'static> {
    /// Validates a container over an owned buffer with the default
    /// (eager) options — equivalent to
    /// `Reader::open(data, ReaderOptions::default())`, kept as the
    /// stable entry point for resident containers.
    ///
    /// # Errors
    ///
    /// A typed [`ContainerError`] naming the first violation — never a
    /// panic, and never an allocation sized from an unverified claim.
    pub fn new(data: Bytes) -> Result<Reader<'static>, ContainerError> {
        Reader::open(data, ReaderOptions::default())
    }

    /// [`Reader::new`] over an owned byte vector.
    ///
    /// # Errors
    ///
    /// As [`Reader::new`].
    pub fn from_vec(data: Vec<u8>) -> Result<Reader<'static>, ContainerError> {
        Reader::new(Bytes::from(data))
    }
}

impl<'src> Reader<'src> {
    /// Validates a container from any [`ContainerSource`] and indexes
    /// it for zero-copy access. No payload is parsed here; every
    /// structural claim the index makes is checked first (see the
    /// crate docs for the exact audit). Whether payload CRC-32s are
    /// swept now or deferred to first touch is chosen by
    /// `options.validation`.
    ///
    /// # Errors
    ///
    /// A typed [`ContainerError`] naming the first violation — never a
    /// panic, and never an allocation sized from an unverified claim.
    pub fn open(
        source: impl Into<ContainerSource<'src>>,
        options: ReaderOptions,
    ) -> Result<Reader<'src>, ContainerError> {
        let opened = Instant::now();
        let source = source.into();
        let data: &[u8] = source.as_slice();
        let mut cur: &[u8] = data;
        need(&cur, HEADER_BYTES)?;
        if cur.get_u32_le() != MAGIC {
            return Err(ContainerError::BadMagic);
        }
        let version = cur.get_u16_le();
        if version != VERSION {
            return Err(ContainerError::VersionSkew { found: version });
        }
        if cur.get_u16_le() != 0 {
            return Err(ContainerError::IndexInvalid("reserved header field is not zero"));
        }
        let rate_bits = cur.get_u64_le();
        let sample_rate_gs = if rate_bits == 0 {
            None
        } else {
            let rate = f64::from_bits(rate_bits);
            if !(rate.is_finite() && rate > 0.0) {
                return Err(ContainerError::IndexInvalid(
                    "header sample rate is not positive finite",
                ));
            }
            Some(rate)
        };
        let count = cur.get_u32_le() as usize;
        let index_bytes = cur.get_u64_le();
        let payload_bytes = cur.get_u64_le();
        let index_crc = cur.get_u32_le();
        let body = (data.len() - HEADER_BYTES) as u64;
        match index_bytes.checked_add(payload_bytes) {
            Some(sections) if sections == body => {}
            Some(sections) if sections < body => {
                return Err(ContainerError::IndexInvalid("trailing bytes after the payload"));
            }
            _ => return Err(ContainerError::Truncated),
        }
        // The entry count is covered by index bytes before it sizes
        // anything: a lying count cannot demand more memory than the
        // attacker paid for in input.
        if (count as u64).checked_mul(MIN_ENTRY_BYTES).is_none_or(|min| min > index_bytes) {
            return Err(ContainerError::IndexInvalid("entry count exceeds the index section"));
        }

        let mut idx: &[u8] = &data[HEADER_BYTES..HEADER_BYTES + index_bytes as usize];
        // Index integrity before index *content*: payload CRCs cannot
        // catch a flipped gate field that would remap an intact payload
        // to the wrong gate, so the index carries its own checksum.
        if crc32(idx) != index_crc {
            return Err(ContainerError::IndexCrcMismatch);
        }
        let mut index: Vec<IndexEntry> = Vec::with_capacity(count);
        let mut next_offset = 0u64;
        for _ in 0..count {
            let gate = take_gate(&mut idx)?;
            need(&idx, 1 + 1 + 2 + 8 + 4 + 4)?;
            let kind = PayloadKind::from_tag(idx.get_u8())
                .ok_or(ContainerError::IndexInvalid("unknown payload kind tag"))?;
            let vtag = idx.get_u8();
            let ws = idx.get_u16_le();
            let variant = decode_variant(vtag, ws).map_err(ContainerError::IndexInvalid)?;
            let offset = idx.get_u64_le();
            let len = idx.get_u32_le();
            let crc = idx.get_u32_le();
            if let Some(prev) = index.last() {
                if prev.gate >= gate {
                    return Err(ContainerError::IndexInvalid(
                        "index is not strictly sorted by gate",
                    ));
                }
            }
            // Contiguity implies bounds and non-overlap in one check —
            // and leaves exactly one valid byte layout per gate set.
            if offset != next_offset {
                return Err(ContainerError::IndexInvalid(
                    "payload ranges are not contiguous (gap or overlap)",
                ));
            }
            next_offset = offset
                .checked_add(u64::from(len))
                .filter(|&end| end <= payload_bytes)
                .ok_or(ContainerError::IndexInvalid("payload range exceeds the payload section"))?;
            index.push(IndexEntry { gate, kind, variant, offset, len, crc });
        }
        if !idx.is_empty() {
            return Err(ContainerError::IndexInvalid("index section larger than its entries"));
        }
        if next_offset != payload_bytes {
            return Err(ContainerError::IndexInvalid("payload section larger than its entries"));
        }

        // Integrity: every payload range must match its recorded
        // CRC-32. Eager mode sweeps all of them now (O(payload), and a
        // constructed reader can never report CrcMismatch later); lazy
        // mode only preallocates the verdict bitmaps, deferring each
        // entry's hash to its first touch (`checked_payload`).
        let payload_base = HEADER_BYTES + index_bytes as usize;
        let (crc_ok, crc_bad) = match options.validation {
            ValidationMode::Eager => {
                for e in &index {
                    let start = payload_base + e.offset as usize;
                    let bytes = &data[start..start + e.len as usize];
                    if crc32(bytes) != e.crc {
                        return Err(ContainerError::CrcMismatch { gate: e.gate.clone() });
                    }
                }
                (Vec::new(), Vec::new())
            }
            ValidationMode::LazyCrc => {
                let words = count.div_ceil(64);
                let zeroed = || (0..words).map(|_| AtomicU64::new(0)).collect::<Vec<_>>();
                (zeroed(), zeroed())
            }
        };

        // Decodability: build (and thereby validate) one engine per
        // distinct plain/adaptive variant; check lapped window sizes.
        let mut engines: Vec<(Variant, DecompressionEngine)> = Vec::new();
        for e in &index {
            match e.kind {
                PayloadKind::Plain | PayloadKind::Adaptive => {
                    if !engines.iter().any(|(v, _)| *v == e.variant) {
                        engines.push((e.variant, DecompressionEngine::for_variant(e.variant)?));
                    }
                }
                PayloadKind::Overlap => {
                    let ws = e.variant.window_size().unwrap_or(0);
                    if !compaqt_dsp::intdct::SUPPORTED_SIZES.contains(&ws) {
                        return Err(ContainerError::Codec(
                            compaqt_core::CompressError::UnsupportedWindow(ws),
                        ));
                    }
                }
            }
        }
        Ok(Reader {
            source,
            payload_base,
            sample_rate_gs,
            index,
            engines,
            validation: options.validation,
            crc_ok,
            crc_bad,
            open_ns: opened.elapsed().as_nanos() as u64,
            trace: OnceLock::new(),
        })
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// `true` if the container holds no entries.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Total container size in bytes.
    pub fn total_bytes(&self) -> usize {
        self.source.len()
    }

    /// The payload integrity policy this reader was opened with.
    pub fn validation(&self) -> ValidationMode {
        self.validation
    }

    /// The source kind serving this reader: `"owned"`, `"borrowed"` or
    /// `"mapped"`.
    pub fn source_kind(&self) -> &'static str {
        self.source.kind_name()
    }

    /// How many entries have a decided payload-CRC verdict.
    ///
    /// All of them under [`ValidationMode::Eager`]; under
    /// [`ValidationMode::LazyCrc`] this counts first-touched entries
    /// (clean or damaged), so it starts at 0 for a freshly opened
    /// reader — the observable proof that open was O(index).
    pub fn crc_checked(&self) -> usize {
        match self.validation {
            ValidationMode::Eager => self.index.len(),
            ValidationMode::LazyCrc => self
                .crc_ok
                .iter()
                .zip(&self.crc_bad)
                .map(|(ok, bad)| {
                    (ok.load(Ordering::Relaxed) | bad.load(Ordering::Relaxed)).count_ones() as usize
                })
                .sum(),
        }
    }

    /// How many entries hold a **failed** payload-CRC verdict — always
    /// 0 under [`ValidationMode::Eager`] (a damaged payload fails the
    /// open-time sweep, so no eager reader exists to report it); under
    /// [`ValidationMode::LazyCrc`] this counts first-touched entries
    /// whose bytes did not hash to the recorded CRC. Monotone: verdicts
    /// are cached, never retried.
    pub fn crc_failed(&self) -> usize {
        self.crc_bad.iter().map(|bad| bad.load(Ordering::Relaxed).count_ones() as usize).sum()
    }

    /// Wall nanoseconds [`Reader::open`] spent validating and indexing
    /// this container.
    pub fn open_ns(&self) -> u64 {
        self.open_ns
    }

    /// Attaches a trace ring: lazy-mode first-touch CRC failures are
    /// pushed to it from then on (`a` = entry index, `b` = expected
    /// CRC-32). First attach wins — returns `false` if one is already
    /// attached. Clean reads never touch the ring.
    pub fn attach_trace(&self, ring: Arc<TraceRing>) -> bool {
        self.trace.set(ring).is_ok()
    }

    /// Contributes this reader's telemetry to an observability
    /// snapshot: entry/byte gauges, lazy-CRC verdict progress
    /// (`reader_crc_checked` / `reader_crc_failed` — the former is
    /// monotone under reads, the observable proof that verdicts are
    /// cached) and the one-shot open cost. Cold path; also available
    /// through the [`Collect`] trait.
    pub fn collect_obs(&self, out: &mut Snapshot) {
        out.push_gauge("reader_entries", self.index.len() as u64);
        out.push_gauge("reader_total_bytes", self.source.len() as u64);
        out.push_gauge("reader_crc_checked", self.crc_checked() as u64);
        out.push_gauge("reader_crc_failed", self.crc_failed() as u64);
        out.push_gauge("reader_open_ns", self.open_ns);
    }

    /// The library-wide DAC sample rate from the header (`None` when
    /// the entries mix rates).
    pub fn sample_rate_gs(&self) -> Option<f64> {
        self.sample_rate_gs
    }

    /// The stored gate ids, in index (= sorted) order.
    pub fn gates(&self) -> impl Iterator<Item = &GateId> {
        self.index.iter().map(|e| &e.gate)
    }

    /// `true` if the container holds an entry for the gate.
    pub fn contains(&self, gate: &GateId) -> bool {
        self.find(gate).is_some()
    }

    /// Looks up a gate's entry (binary search over the sorted index).
    pub fn find(&self, gate: &GateId) -> Option<Entry<'_>> {
        self.find_index(gate).map(|k| Entry { reader: self, k })
    }

    /// Iterates the entries in index order.
    pub fn entries(&self) -> impl Iterator<Item = Entry<'_>> {
        (0..self.index.len()).map(move |k| Entry { reader: self, k })
    }

    /// Random-access decode of one gate, straight from the backing
    /// buffer: the payload is parsed into `scratch`'s reusable stream
    /// slot and decoded through its [`DecodeScratch`] into the caller's
    /// output buffers. With warm buffers the call performs zero heap
    /// allocations — this is the container's own serving path, for
    /// processes that skip the [`Store`] entirely.
    ///
    /// # Errors
    ///
    /// [`ContainerError::UnknownGate`] for an absent gate;
    /// [`ContainerError::Unservable`] for lapped/adaptive entries (use
    /// [`Entry::read`]); payload/codec errors for streams forged past
    /// the CRC.
    pub fn fetch_into(
        &self,
        gate: &GateId,
        scratch: &mut ContainerScratch,
        i_out: &mut Vec<f64>,
        q_out: &mut Vec<f64>,
    ) -> Result<EngineStats, ContainerError> {
        let k = self.find_index(gate).ok_or_else(|| ContainerError::UnknownGate(gate.clone()))?;
        let e = &self.index[k];
        if e.kind != PayloadKind::Plain {
            return Err(ContainerError::Unservable { gate: gate.clone() });
        }
        let mut cur: &[u8] = self.checked_payload(k)?;
        take_plain_into(&mut cur, &mut scratch.slot, &mut scratch.spares)?;
        check_parsed_plain(cur, scratch.slot.variant, e.variant)?;
        let engine = self
            .engines
            .iter()
            .find(|(v, _)| *v == e.variant)
            .map(|(_, engine)| engine)
            .expect("engines built for every plain variant at validation");
        engine
            .decompress_into(&scratch.slot, &mut scratch.decode, i_out, q_out)
            .map_err(ContainerError::Codec)
    }

    /// Loads the whole container into a serving [`Store`], parsing each
    /// payload once and moving the stream in (no re-encode, no clone) —
    /// the `mmap → serve` bridge. The store then serves
    /// [`Store::fetch_into`] with zero steady-state allocations.
    ///
    /// # Errors
    ///
    /// [`ContainerError::Unservable`] if any entry is a lapped or
    /// adaptive stream (the store holds plain streams only); payload
    /// and codec errors for streams forged past the CRC.
    pub fn into_store(self, config: StoreConfig) -> Result<Store, ContainerError> {
        self.load_store(config)
    }

    fn load_store(&self, config: StoreConfig) -> Result<Store, ContainerError> {
        let store = Store::new(config);
        let mut spares = SlotSpares::default();
        for (k, e) in self.index.iter().enumerate() {
            if e.kind != PayloadKind::Plain {
                return Err(ContainerError::Unservable { gate: e.gate.clone() });
            }
            let mut cur: &[u8] = self.checked_payload(k)?;
            let mut z = CompressedWaveform::empty();
            take_plain_into(&mut cur, &mut z, &mut spares)?;
            check_parsed_plain(cur, z.variant, e.variant)?;
            store.insert(e.gate.clone(), z)?;
        }
        Ok(store)
    }

    /// The validated wire-encoded stream bytes for a plain entry — the
    /// exact bytes a serve-loop response frame carries, since the
    /// container payload encoding and the wire stream encoding are the
    /// same `put_plain` layout. This is the zero-parse serving path: a
    /// responder can append these bytes to a frame without ever
    /// decoding the stream.
    ///
    /// In [`ValidationMode::LazyCrc`] this is a first-touch point: the
    /// payload CRC is verified (or its cached verdict replayed) before
    /// any byte is handed out.
    ///
    /// # Errors
    ///
    /// [`ContainerError::UnknownGate`] for an absent gate,
    /// [`ContainerError::Unservable`] for lapped/adaptive entries,
    /// [`ContainerError::CrcMismatch`] for a damaged payload in lazy
    /// mode.
    pub fn stream_bytes(&self, gate: &GateId) -> Result<&[u8], ContainerError> {
        let k = self.find_index(gate).ok_or_else(|| ContainerError::UnknownGate(gate.clone()))?;
        if self.index[k].kind != PayloadKind::Plain {
            return Err(ContainerError::Unservable { gate: gate.clone() });
        }
        self.checked_payload(k)
    }

    fn find_index(&self, gate: &GateId) -> Option<usize> {
        self.index.binary_search_by(|e| e.gate.cmp(gate)).ok()
    }

    /// Borrowed view of entry `k`'s raw payload bytes (no CRC gate).
    fn payload_slice(&self, k: usize) -> &[u8] {
        let e = &self.index[k];
        let start = self.payload_base + e.offset as usize;
        &self.source.as_slice()[start..start + e.len as usize]
    }

    /// Entry `k`'s payload bytes behind the integrity gate: a
    /// pass-through in eager mode (the open-time sweep already proved
    /// them), a cached-verdict check or first-touch CRC in lazy mode.
    ///
    /// Lazy-mode memory discipline: the bitmaps are preallocated at
    /// open and the bits are monotonic — racing first touches compute
    /// the same verdict over the same immutable bytes, so `fetch_or`
    /// with relaxed ordering is enough (an `ok` bit can only ever mean
    /// "these bytes hashed clean").
    fn checked_payload(&self, k: usize) -> Result<&[u8], ContainerError> {
        let bytes = self.payload_slice(k);
        if self.validation == ValidationMode::Eager {
            return Ok(bytes);
        }
        let (word, bit) = (k / 64, 1u64 << (k % 64));
        if self.crc_ok[word].load(Ordering::Relaxed) & bit != 0 {
            return Ok(bytes);
        }
        if self.crc_bad[word].load(Ordering::Relaxed) & bit != 0 {
            return Err(ContainerError::CrcMismatch { gate: self.index[k].gate.clone() });
        }
        if crc32(bytes) == self.index[k].crc {
            self.crc_ok[word].fetch_or(bit, Ordering::Relaxed);
            Ok(bytes)
        } else {
            self.crc_bad[word].fetch_or(bit, Ordering::Relaxed);
            // First-touch failure (a racing toucher may emit a
            // duplicate — the verdict bits, not the trace, are the
            // ledger). Cached-verdict replays above do not re-emit.
            if let Some(ring) = self.trace.get() {
                ring.push(TraceKind::CrcFail, k as u64, u64::from(self.index[k].crc));
            }
            Err(ContainerError::CrcMismatch { gate: self.index[k].gate.clone() })
        }
    }
}

impl Collect for Reader<'_> {
    fn collect(&self, out: &mut Snapshot) {
        self.collect_obs(out);
    }
}

/// Post-parse consistency checks shared by every plain-payload
/// consumer: the payload must end exactly where its parse did, and must
/// agree with the index about its variant (a forged disagreement would
/// otherwise let an attacker route a stream to the wrong engine).
fn check_parsed_plain(
    rest: &[u8],
    parsed: Variant,
    declared: Variant,
) -> Result<(), ContainerError> {
    if !rest.is_empty() {
        return Err(ContainerError::PayloadInvalid("trailing bytes after the stream"));
    }
    if parsed != declared {
        return Err(ContainerError::PayloadInvalid("payload variant disagrees with the index"));
    }
    Ok(())
}

/// Builds a value from a validated container without consuming the
/// [`Reader`] — the inverse bridge to [`write_store`](crate::write_store).
///
/// Exists so the serving store can be constructed with
/// `Store::from_reader(&reader, config)` syntax (`compaqt-core` cannot
/// name this crate's types itself).
pub trait FromContainer: Sized {
    /// Builds `Self` from the container behind `reader`.
    ///
    /// # Errors
    ///
    /// Implementation-specific [`ContainerError`]s.
    fn from_reader(reader: &Reader<'_>, config: StoreConfig) -> Result<Self, ContainerError>;
}

impl FromContainer for Store {
    fn from_reader(reader: &Reader<'_>, config: StoreConfig) -> Result<Store, ContainerError> {
        reader.load_store(config)
    }
}

/// One container entry: index metadata plus a zero-copy payload view.
#[derive(Clone, Copy)]
pub struct Entry<'a> {
    reader: &'a Reader<'a>,
    k: usize,
}

impl fmt::Debug for Entry<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let e = &self.reader.index[self.k];
        f.debug_struct("Entry")
            .field("gate", &e.gate)
            .field("kind", &e.kind)
            .field("variant", &e.variant)
            .field("payload_len", &e.len)
            .finish()
    }
}

impl<'a> Entry<'a> {
    /// The gate this entry stores.
    pub fn gate(&self) -> &'a GateId {
        &self.reader.index[self.k].gate
    }

    /// What kind of stream the payload holds.
    pub fn kind(&self) -> PayloadKind {
        self.reader.index[self.k].kind
    }

    /// The compression variant the index declares.
    pub fn variant(&self) -> Variant {
        self.reader.index[self.k].variant
    }

    /// Payload size in bytes.
    pub fn payload_len(&self) -> usize {
        self.reader.index[self.k].len as usize
    }

    /// The payload's CRC-32 as recorded (and verified) in the index.
    pub fn crc32(&self) -> u32 {
        self.reader.index[self.k].crc
    }

    /// The raw payload bytes as an owned handle — zero-copy (a
    /// reference-counted slice of the backing buffer) for an owned
    /// source, a copy for borrowed and mapped sources (their bytes
    /// have no refcount to share; use [`Entry::payload_slice`] for the
    /// zero-copy view).
    ///
    /// **Integrity caveat:** this is the raw-bytes escape hatch. Under
    /// [`ValidationMode::LazyCrc`] the bytes may not have been
    /// CRC-checked yet — call [`Entry::verify`] first if you are going
    /// to trust them. Every parsing/decoding path ([`Entry::read`],
    /// [`Reader::fetch_into`], the store bridges, the serve path)
    /// checks the verdict itself.
    pub fn payload(&self) -> Bytes {
        match &self.reader.source {
            ContainerSource::Owned(data) => {
                let e = &self.reader.index[self.k];
                let start = self.reader.payload_base + e.offset as usize;
                data.slice(start..start + e.len as usize)
            }
            _ => Bytes::copy_from_slice(self.payload_slice()),
        }
    }

    /// The raw payload bytes, borrowed straight from the backing
    /// source — zero-copy for every source kind. Same integrity caveat
    /// as [`Entry::payload`].
    pub fn payload_slice(&self) -> &'a [u8] {
        self.reader.payload_slice(self.k)
    }

    /// Forces this entry's payload-CRC verdict: a no-op under
    /// [`ValidationMode::Eager`], a first-touch check (or cached
    /// verdict replay) under [`ValidationMode::LazyCrc`].
    ///
    /// # Errors
    ///
    /// [`ContainerError::CrcMismatch`] if the payload bytes are
    /// damaged.
    pub fn verify(&self) -> Result<(), ContainerError> {
        self.reader.checked_payload(self.k).map(|_| ())
    }

    /// Parses the payload into an owned stream.
    ///
    /// # Errors
    ///
    /// [`ContainerError::CrcMismatch`] for a damaged payload in lazy
    /// mode; [`ContainerError::PayloadInvalid`] for encodings forged
    /// past the CRC (a container produced by
    /// [`Writer`](crate::Writer) always parses).
    pub fn read(&self) -> Result<StreamPayload, ContainerError> {
        let e = &self.reader.index[self.k];
        let mut cur: &[u8] = self.reader.checked_payload(self.k)?;
        match e.kind {
            PayloadKind::Plain => {
                let mut z = CompressedWaveform::empty();
                take_plain_into(&mut cur, &mut z, &mut SlotSpares::default())?;
                check_parsed_plain(cur, z.variant, e.variant)?;
                Ok(StreamPayload::Plain(z))
            }
            PayloadKind::Overlap => {
                let z = take_overlap(&mut cur)?;
                if !cur.is_empty() {
                    return Err(ContainerError::PayloadInvalid("trailing bytes after the stream"));
                }
                if e.variant.window_size() != Some(z.ws) {
                    return Err(ContainerError::PayloadInvalid(
                        "payload window size disagrees with the index",
                    ));
                }
                Ok(StreamPayload::Overlap(z))
            }
            PayloadKind::Adaptive => {
                let z = take_adaptive(&mut cur)?;
                if !cur.is_empty() {
                    return Err(ContainerError::PayloadInvalid("trailing bytes after the stream"));
                }
                if z.variant != e.variant {
                    return Err(ContainerError::PayloadInvalid(
                        "payload variant disagrees with the index",
                    ));
                }
                Ok(StreamPayload::Adaptive(z))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::{write_library, Writer};
    use compaqt_core::adaptive::AdaptiveCompressor;
    use compaqt_core::compress::Compressor;
    use compaqt_core::overlap::OverlapCompressor;
    use compaqt_pulse::device::Device;
    use compaqt_pulse::library::GateKind;
    use compaqt_pulse::shapes::{Drag, GaussianSquare, PulseShape};
    use compaqt_pulse::vendor::Vendor;

    fn library() -> std::sync::Arc<compaqt_pulse::library::PulseLibrary> {
        Device::synthesize(Vendor::Ibm, 3, 0xC0DE).pulse_library()
    }

    fn container() -> Bytes {
        write_library(&library(), &Compressor::new(Variant::IntDctW { ws: 16 })).unwrap()
    }

    #[test]
    fn round_trips_every_entry_bit_exactly() {
        let lib = library();
        let compressor = Compressor::new(Variant::IntDctW { ws: 16 });
        let reader = Reader::new(container()).unwrap();
        assert_eq!(reader.len(), lib.len());
        assert_eq!(reader.sample_rate_gs(), lib.uniform_sample_rate_gs());
        for (gate, wf) in lib.iter() {
            let entry = reader.find(gate).expect("every gate is present");
            let StreamPayload::Plain(z) = entry.read().unwrap() else {
                panic!("library containers hold plain streams");
            };
            assert_eq!(z, compressor.compress(wf).unwrap(), "{gate}: stream round-trip");
        }
    }

    #[test]
    fn bytes_are_canonical_regardless_of_add_order() {
        let lib = library();
        let compressor = Compressor::new(Variant::IntDctW { ws: 16 });
        let entries: Vec<(GateId, CompressedWaveform)> =
            lib.iter().map(|(g, wf)| (g.clone(), compressor.compress(wf).unwrap())).collect();
        let mut forward = Writer::new();
        for (g, z) in &entries {
            forward.add(g, z).unwrap();
        }
        let mut backward = Writer::new();
        for (g, z) in entries.iter().rev() {
            backward.add(g, z).unwrap();
        }
        assert_eq!(
            forward.finish().unwrap().as_ref(),
            backward.finish().unwrap().as_ref(),
            "same library must produce identical container bytes"
        );
    }

    #[test]
    fn fetch_into_matches_the_engine_decode() {
        let lib = library();
        let compressor = Compressor::new(Variant::IntDctW { ws: 16 });
        let reader = Reader::new(container()).unwrap();
        let engine = DecompressionEngine::for_variant(compressor.variant()).unwrap();
        let mut scratch = ContainerScratch::new();
        let (mut i, mut q) = (Vec::new(), Vec::new());
        for (gate, wf) in lib.iter() {
            let z = compressor.compress(wf).unwrap();
            let (expect, expect_stats) = engine.decompress(&z).unwrap();
            let stats = reader.fetch_into(gate, &mut scratch, &mut i, &mut q).unwrap();
            assert_eq!(expect.i(), &i[..], "{gate}: I channel");
            assert_eq!(expect.q(), &q[..], "{gate}: Q channel");
            assert_eq!(expect_stats, stats, "{gate}: engine stats");
        }
    }

    #[test]
    fn store_bridges_serve_the_same_samples() {
        let lib = library();
        let reader = Reader::new(container()).unwrap();
        let via_trait = Store::from_reader(&reader, StoreConfig::default()).unwrap();
        let store = reader.into_store(StoreConfig::default()).unwrap();
        assert_eq!(store.len(), lib.len());
        assert_eq!(via_trait.len(), lib.len());
        let (mut i, mut q) = (Vec::new(), Vec::new());
        let (mut i2, mut q2) = (Vec::new(), Vec::new());
        for (gate, wf) in lib.iter() {
            store.fetch_into(gate, &mut i, &mut q).unwrap();
            via_trait.fetch_into(gate, &mut i2, &mut q2).unwrap();
            assert_eq!(i.len(), wf.len(), "{gate}");
            assert_eq!(i, i2, "{gate}: both bridges agree");
            assert_eq!(q, q2, "{gate}");
        }
    }

    #[test]
    fn overlap_and_adaptive_entries_round_trip() {
        let ramp = Drag::new(136, 0.5, 34.0, 0.2).to_waveform("X(q0)", 4.54);
        let flat = GaussianSquare::new(1362, 0.3, 40.0, 1000).to_waveform("CX(q0,q1)", 4.54);
        let lapped = OverlapCompressor::new(8).unwrap().compress(&ramp).unwrap();
        let adaptive =
            AdaptiveCompressor::new(Variant::IntDctW { ws: 16 }).compress(&flat).unwrap();
        let mut writer = Writer::new();
        let g_overlap = GateId::single(GateKind::X, 0);
        let g_adaptive = GateId::pair(GateKind::Cx, 0, 1);
        writer.add_overlap(&g_overlap, &lapped).unwrap();
        writer.add_adaptive(&g_adaptive, &adaptive).unwrap();
        let reader = Reader::new(writer.finish().unwrap()).unwrap();

        let entry = reader.find(&g_overlap).unwrap();
        assert_eq!(entry.kind(), PayloadKind::Overlap);
        let StreamPayload::Overlap(back) = entry.read().unwrap() else { panic!("overlap kind") };
        assert_eq!(back, lapped, "lapped stream round-trip");
        assert_eq!(
            back.decompress().unwrap().i(),
            lapped.decompress().unwrap().i(),
            "decode agrees"
        );

        let entry = reader.find(&g_adaptive).unwrap();
        assert_eq!(entry.kind(), PayloadKind::Adaptive);
        let StreamPayload::Adaptive(back) = entry.read().unwrap() else { panic!("adaptive kind") };
        assert_eq!(back, adaptive, "adaptive stream round-trip");

        // Neither kind is store-servable: typed error, not a panic.
        let mut scratch = ContainerScratch::new();
        let (mut i, mut q) = (Vec::new(), Vec::new());
        assert!(matches!(
            reader.fetch_into(&g_overlap, &mut scratch, &mut i, &mut q),
            Err(ContainerError::Unservable { .. })
        ));
        assert!(matches!(
            reader.into_store(StoreConfig::default()),
            Err(ContainerError::Unservable { .. })
        ));
    }

    #[test]
    fn mixed_rates_clear_the_header_rate() {
        let a = Drag::new(64, 0.5, 16.0, 0.2).to_waveform("a", 4.54);
        let b = Drag::new(64, 0.5, 16.0, 0.2).to_waveform("b", 2.0);
        let c = Compressor::new(Variant::IntDctW { ws: 8 });
        let mut writer = Writer::new();
        writer.add(&GateId::single(GateKind::X, 0), &c.compress(&a).unwrap()).unwrap();
        writer.add(&GateId::single(GateKind::X, 1), &c.compress(&b).unwrap()).unwrap();
        let reader = Reader::new(writer.finish().unwrap()).unwrap();
        assert_eq!(reader.sample_rate_gs(), None);
    }

    #[test]
    fn unknown_gates_and_empty_containers() {
        let reader = Reader::new(container()).unwrap();
        let missing = GateId::single(GateKind::Measure, 99);
        assert!(reader.find(&missing).is_none());
        let mut scratch = ContainerScratch::new();
        assert!(matches!(
            reader.fetch_into(&missing, &mut scratch, &mut Vec::new(), &mut Vec::new()),
            Err(ContainerError::UnknownGate(_))
        ));
        let empty = Reader::new(Writer::new().finish().unwrap()).unwrap();
        assert!(empty.is_empty());
        assert_eq!(empty.sample_rate_gs(), None);
        assert!(empty.into_store(StoreConfig::default()).unwrap().is_empty());
    }

    #[test]
    fn duplicate_gates_are_rejected_at_finish() {
        let wf = Drag::new(64, 0.5, 16.0, 0.2).to_waveform("X(q0)", 4.54);
        let z = Compressor::new(Variant::IntDctW { ws: 8 }).compress(&wf).unwrap();
        let mut writer = Writer::new();
        let gate = GateId::single(GateKind::X, 0);
        writer.add(&gate, &z).unwrap();
        writer.add(&gate, &z).unwrap();
        assert_eq!(writer.finish().unwrap_err(), ContainerError::DuplicateGate(gate));
    }

    #[test]
    fn header_damage_is_typed() {
        let bytes = container().to_vec();
        // Magic.
        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        assert_eq!(Reader::from_vec(bad).unwrap_err(), ContainerError::BadMagic);
        // Version skew.
        let mut bad = bytes.clone();
        bad[4] = 9;
        assert_eq!(Reader::from_vec(bad).unwrap_err(), ContainerError::VersionSkew { found: 9 });
        // Reserved bits.
        let mut bad = bytes.clone();
        bad[6] = 1;
        assert!(matches!(Reader::from_vec(bad).unwrap_err(), ContainerError::IndexInvalid(_)));
        // Trailing garbage.
        let mut bad = bytes.clone();
        bad.push(0);
        assert!(matches!(Reader::from_vec(bad).unwrap_err(), ContainerError::IndexInvalid(_)));
    }

    #[test]
    fn every_truncation_is_an_error_never_a_panic() {
        let bytes = container().to_vec();
        for cut in 0..bytes.len() {
            let err = Reader::from_vec(bytes[..cut].to_vec())
                .expect_err("a truncated container must not validate");
            assert!(
                matches!(
                    err,
                    ContainerError::Truncated
                        | ContainerError::IndexInvalid(_)
                        | ContainerError::CrcMismatch { .. }
                ),
                "cut at {cut}: unexpected error {err:?}"
            );
        }
    }

    #[test]
    fn payload_damage_is_a_crc_mismatch() {
        let clean = container().to_vec();
        // Flip one bit in the last byte (payload section).
        let mut bad = clean.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x10;
        assert!(matches!(Reader::from_vec(bad).unwrap_err(), ContainerError::CrcMismatch { .. }));
    }
}
