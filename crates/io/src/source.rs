//! Container byte sources and validation policy for [`Reader::open`].
//!
//! A CWL container is just bytes; where those bytes live should not
//! dictate the API. [`ContainerSource`] abstracts the three homes a
//! library realistically has on a control processor:
//!
//! - **Owned** — an [`Bytes`] buffer the reader keeps alive (the
//!   classic [`Reader::new`] path; network fetches, embedded blobs).
//! - **Borrowed** — a caller-managed `&[u8]` region (arena slices,
//!   `include_bytes!`, a buffer another subsystem owns). The reader
//!   borrows it for `'src` and copies nothing.
//! - **Mapped** — a read-only [`memmap2::Mmap`] of a container file,
//!   so a multi-GB library is demand-paged instead of resident.
//!
//! [`ValidationMode`] decides how much of the container is audited at
//! open time. The structural index audit is *always* eager — it is
//! O(index) and it is what makes every later borrow safe — but the
//! per-entry payload CRC-32 sweep is O(payload), which for a mapped
//! multi-GB library means faulting in every page before the first
//! fetch. [`ValidationMode::LazyCrc`] defers that sweep to first touch
//! per entry, caching each verdict in an atomic bitmap.
//!
//! [`Reader::open`]: crate::Reader::open
//! [`Reader::new`]: crate::Reader::new

use bytes::Bytes;
use memmap2::Mmap;
use std::fmt;
use std::fs::File;
use std::path::Path;

/// Where a container's backing bytes live. See the [module docs](self).
pub enum ContainerSource<'src> {
    /// An owned, reference-counted buffer the reader keeps alive.
    Owned(Bytes),
    /// A caller-managed region borrowed for `'src`.
    Borrowed(&'src [u8]),
    /// A read-only memory map of a container file.
    Mapped(Mmap),
}

impl ContainerSource<'_> {
    /// Memory-maps the container file at `path` (read-only, private).
    ///
    /// The resulting source is `'static`: the mapping owns its pages.
    ///
    /// # Errors
    ///
    /// Any `open(2)` / `mmap(2)` failure, as [`std::io::Error`] —
    /// container *content* problems surface later, from
    /// [`Reader::open`](crate::Reader::open), as typed
    /// [`ContainerError`](crate::ContainerError)s.
    pub fn map_path(path: impl AsRef<Path>) -> std::io::Result<ContainerSource<'static>> {
        let file = File::open(path)?;
        // Safety: the map is read-only and private; compaqt's contract
        // (documented on `Mmap::map`) requires the caller not to
        // truncate a container file while a reader serves from it.
        let map = unsafe { Mmap::map(&file)? };
        Ok(ContainerSource::Mapped(map))
    }

    /// The backing bytes, whichever home they live in.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        match self {
            ContainerSource::Owned(data) => data,
            ContainerSource::Borrowed(data) => data,
            ContainerSource::Mapped(map) => map,
        }
    }

    /// Total source length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Whether the source is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    /// A short name for the source kind (used in `Debug` output and
    /// test matrices): `"owned"`, `"borrowed"` or `"mapped"`.
    pub fn kind_name(&self) -> &'static str {
        match self {
            ContainerSource::Owned(_) => "owned",
            ContainerSource::Borrowed(_) => "borrowed",
            ContainerSource::Mapped(_) => "mapped",
        }
    }
}

impl fmt::Debug for ContainerSource<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ContainerSource")
            .field("kind", &self.kind_name())
            .field("bytes", &self.len())
            .finish()
    }
}

impl From<Bytes> for ContainerSource<'static> {
    fn from(data: Bytes) -> Self {
        ContainerSource::Owned(data)
    }
}

impl From<Vec<u8>> for ContainerSource<'static> {
    fn from(data: Vec<u8>) -> Self {
        ContainerSource::Owned(Bytes::from(data))
    }
}

impl<'src> From<&'src [u8]> for ContainerSource<'src> {
    fn from(data: &'src [u8]) -> Self {
        ContainerSource::Borrowed(data)
    }
}

impl From<Mmap> for ContainerSource<'static> {
    fn from(map: Mmap) -> Self {
        ContainerSource::Mapped(map)
    }
}

/// How much payload integrity checking happens at open time.
///
/// The structural index audit (header, sizes, index CRC, sort order,
/// offset contiguity, decodable variants) is identical — and always
/// eager — in both modes; only the per-entry payload CRC-32 sweep
/// moves. Both modes refuse to serve damaged payload bytes; they differ
/// only in *when* the damage is discovered.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ValidationMode {
    /// Verify every payload's CRC-32 during [`Reader::open`] — open is
    /// O(container), exactly the historical [`Reader::new`] behaviour,
    /// and a reader that constructs can never report
    /// [`CrcMismatch`](crate::ContainerError::CrcMismatch) later.
    ///
    /// [`Reader::open`]: crate::Reader::open
    /// [`Reader::new`]: crate::Reader::new
    #[default]
    Eager,
    /// Defer each payload's CRC-32 to its first access — open is
    /// O(index), the larger-than-RAM mode. The verdict is computed at
    /// most usefully once per entry and cached in an atomic bitmap (one
    /// `u64` word per 64 entries, allocated at open), so repeat access
    /// costs one relaxed atomic load and a damaged entry keeps failing
    /// with the same typed error without re-hashing. All decode and
    /// serve paths check the verdict before parsing; only the raw-bytes
    /// escape hatch [`Entry::payload`](crate::Entry::payload) bypasses
    /// it (documented there).
    LazyCrc,
}

/// Options for [`Reader::open`](crate::Reader::open).
///
/// Construct with the builder-style helpers (the struct is
/// `#[non_exhaustive]` so future knobs can land without breakage); the
/// `Default` is bit-for-bit the historical `Reader::new` behaviour.
///
/// ```
/// use compaqt_io::{ReaderOptions, ValidationMode};
///
/// let eager = ReaderOptions::default();
/// assert_eq!(eager.validation, ValidationMode::Eager);
/// let lazy = ReaderOptions::lazy_crc();
/// assert_eq!(lazy.validation, ValidationMode::LazyCrc);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct ReaderOptions {
    /// Payload integrity policy (see [`ValidationMode`]).
    pub validation: ValidationMode,
}

impl ReaderOptions {
    /// The default options ([`ValidationMode::Eager`]).
    pub fn new() -> Self {
        ReaderOptions::default()
    }

    /// Options with [`ValidationMode::LazyCrc`] — the larger-than-RAM
    /// open path.
    pub fn lazy_crc() -> Self {
        ReaderOptions::new().validation(ValidationMode::LazyCrc)
    }

    /// Sets the validation mode.
    #[must_use]
    pub fn validation(mut self, mode: ValidationMode) -> Self {
        self.validation = mode;
        self
    }
}
