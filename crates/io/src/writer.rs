//! The container writer: stage borrowed streams, emit canonical bytes.
//!
//! [`Writer::add`] serializes each stream's payload immediately (so the
//! caller's stream is only *borrowed* — nothing is cloned and nothing
//! outlives the call), and [`Writer::finish`] stitches the container:
//! entries sorted by gate id, payloads laid out contiguously in index
//! order, offsets and CRC-32s computed over the final layout. Because
//! the index order is a pure function of the gate set, **the same
//! library produces byte-identical containers regardless of the order
//! streams were added** — the determinism the round-trip suite pins.

use crate::format::{
    checked_u32, encode_variant, put_adaptive, put_gate, put_overlap, put_plain, PayloadKind,
    HEADER_BYTES,
};
use crate::{crc32::crc32, ContainerError, MAGIC, VERSION};
use bytes::{BufMut, Bytes, BytesMut};
use compaqt_core::adaptive::AdaptiveCompressed;
use compaqt_core::compress::{CompressedWaveform, Compressor, Variant};
use compaqt_core::engine::EncodeScratch;
use compaqt_core::overlap::OverlapCompressed;
use compaqt_core::stats::LibraryReport;
use compaqt_core::store::Store;
use compaqt_pulse::library::{GateId, PulseLibrary};

/// One staged entry: the payload already serialized into the staging
/// buffer, waiting for `finish` to place it in canonical order.
#[derive(Debug)]
struct Pending {
    gate: GateId,
    kind: PayloadKind,
    variant: Variant,
    /// Payload byte range in the staging buffer.
    start: usize,
    len: usize,
    /// The stream's own DAC rate (for the uniform-rate header field).
    rate_gs: f64,
}

/// A streaming container writer. See the [module docs](self) for the
/// canonical-bytes contract.
///
/// # Example
///
/// ```
/// use compaqt_core::compress::{Compressor, Variant};
/// use compaqt_io::{Reader, Writer};
/// use compaqt_pulse::shapes::{Drag, PulseShape};
/// use compaqt_pulse::library::{GateId, GateKind};
///
/// let wf = Drag::new(136, 0.5, 34.0, 0.2).to_waveform("X(q0)", 4.54);
/// let z = Compressor::new(Variant::IntDctW { ws: 16 }).compress(&wf)?;
/// let mut writer = Writer::new();
/// writer.add(&GateId::single(GateKind::X, 0), &z)?;
/// let reader = Reader::new(writer.finish()?)?;
/// assert_eq!(reader.len(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Default)]
pub struct Writer {
    staging: BytesMut,
    entries: Vec<Pending>,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// Entries staged so far.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if nothing has been staged.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Stages a plain compressed stream for `gate` (the stream is
    /// serialized now and only borrowed for this call).
    ///
    /// # Errors
    ///
    /// [`ContainerError::Unrepresentable`] if a name or qubit list
    /// exceeds the format's field widths. Duplicate gates are reported
    /// at [`Writer::finish`].
    pub fn add(&mut self, gate: &GateId, z: &CompressedWaveform) -> Result<(), ContainerError> {
        self.stage(gate, PayloadKind::Plain, z.variant, z.sample_rate_gs, |buf| put_plain(buf, z))
    }

    /// Stages an overlapped-window stream for `gate`. The index records
    /// it as a float windowed variant at the lapped window size.
    ///
    /// # Errors
    ///
    /// [`ContainerError::Unrepresentable`] on oversized fields.
    pub fn add_overlap(
        &mut self,
        gate: &GateId,
        z: &OverlapCompressed,
    ) -> Result<(), ContainerError> {
        let variant = Variant::DctW { ws: z.ws };
        self.stage(gate, PayloadKind::Overlap, variant, z.sample_rate_gs, |buf| put_overlap(buf, z))
    }

    /// Stages an adaptive IDCT-bypass stream for `gate`. The index
    /// records the ramp-segment variant.
    ///
    /// # Errors
    ///
    /// [`ContainerError::Unrepresentable`] on oversized fields.
    pub fn add_adaptive(
        &mut self,
        gate: &GateId,
        z: &AdaptiveCompressed,
    ) -> Result<(), ContainerError> {
        self.stage(gate, PayloadKind::Adaptive, z.variant, z.sample_rate_gs, |buf| {
            put_adaptive(buf, z)
        })
    }

    fn stage(
        &mut self,
        gate: &GateId,
        kind: PayloadKind,
        variant: Variant,
        rate_gs: f64,
        put: impl FnOnce(&mut BytesMut) -> Result<(), ContainerError>,
    ) -> Result<(), ContainerError> {
        // The reader refuses rates outside (0, inf); refusing them here
        // keeps "written successfully" implying "readable".
        if !(rate_gs.is_finite() && rate_gs > 0.0) {
            return Err(ContainerError::Unrepresentable("sample rate is not positive finite"));
        }
        let start = self.staging.len();
        put(&mut self.staging)?;
        self.entries.push(Pending {
            gate: gate.clone(),
            kind,
            variant,
            start,
            len: self.staging.len() - start,
            rate_gs,
        });
        Ok(())
    }

    /// Emits the finished container: header, gate-sorted index,
    /// contiguous payload section.
    ///
    /// # Errors
    ///
    /// [`ContainerError::DuplicateGate`] if two entries share a gate;
    /// [`ContainerError::Unrepresentable`] if a gate id exceeds the
    /// format's field widths.
    pub fn finish(mut self) -> Result<Bytes, ContainerError> {
        self.entries.sort_by(|a, b| a.gate.cmp(&b.gate));
        if let Some(w) = self.entries.windows(2).find(|w| w[0].gate == w[1].gate) {
            return Err(ContainerError::DuplicateGate(w[0].gate.clone()));
        }
        // Header rate: the uniform stream rate, 0 bits when mixed/empty.
        let rate_bits = match self.entries.split_first() {
            Some((first, rest)) if rest.iter().all(|e| e.rate_gs == first.rate_gs) => {
                first.rate_gs.to_bits()
            }
            _ => 0,
        };
        let staged: Bytes = self.staging.freeze();

        // Index, then offsets: payloads sit contiguously in index order.
        let mut index = BytesMut::with_capacity(32 * self.entries.len());
        let mut offset = 0u64;
        for e in &self.entries {
            put_gate(&mut index, &e.gate)?;
            index.put_u8(e.kind.tag());
            let (vtag, ws) = encode_variant(e.variant)?;
            index.put_u8(vtag);
            index.put_u16_le(ws);
            index.put_u64_le(offset);
            index.put_u32_le(checked_u32(e.len, "entry payload beyond 4 GiB")?);
            index.put_u32_le(crc32(&staged[e.start..e.start + e.len]));
            offset += e.len as u64;
        }

        let index = index.freeze();
        let mut out = BytesMut::with_capacity(HEADER_BYTES + index.len() + staged.len());
        out.put_u32_le(MAGIC);
        out.put_u16_le(VERSION);
        out.put_u16_le(0); // reserved, must be zero
        out.put_u64_le(rate_bits);
        out.put_u32_le(checked_u32(self.entries.len(), "more than 2^32 entries")?);
        out.put_u64_le(index.len() as u64);
        out.put_u64_le(offset);
        // The index's own checksum: without it, a flipped bit in a gate
        // field could remap a payload to the wrong gate while every
        // payload CRC still verifies.
        out.put_u32_le(crc32(&index));
        out.put_slice(&index);
        for e in &self.entries {
            out.put_slice(&staged[e.start..e.start + e.len]);
        }
        Ok(out.freeze())
    }
}

/// Compresses a whole pulse library and serializes it in one pass,
/// reusing one [`EncodeScratch`] and one stream slot across all
/// waveforms (the zero-steady-state-allocation encode path) — peak
/// memory is one compressed waveform plus the container bytes.
///
/// Waveforms are staged through
/// [`PulseLibrary::iter_sorted`], so payloads land in the staging
/// buffer already in canonical index order and [`Writer::finish`]'s
/// sort is a no-op (the bytes are identical either way — the sort is
/// what *guarantees* canonical output for arbitrary staging orders).
///
/// # Errors
///
/// Propagates compression errors and format-width overflows.
pub fn write_library(
    library: &PulseLibrary,
    compressor: &Compressor,
) -> Result<Bytes, ContainerError> {
    let mut writer = Writer::new();
    let mut scratch = EncodeScratch::new();
    let mut slot = CompressedWaveform::empty();
    for (gate, wf) in library.iter_sorted() {
        compressor.compress_into(wf, &mut scratch, &mut slot)?;
        writer.add(gate, &slot)?;
    }
    writer.finish()
}

/// Serializes a compile-side [`LibraryReport`]'s streams (borrowed, not
/// cloned) into a container.
///
/// # Errors
///
/// Propagates format-width overflows.
pub fn write_report(report: &LibraryReport) -> Result<Bytes, ContainerError> {
    let mut writer = Writer::new();
    for w in &report.waveforms {
        writer.add(&w.gate, &w.compressed)?;
    }
    writer.finish()
}

/// Serializes a serving [`Store`]'s streams into a container, draining
/// it shard by shard under read locks
/// ([`Store::for_each_entry`]) without cloning a stream. The writer's
/// canonical sort makes the bytes identical however the store's shards
/// happened to order their maps.
///
/// # Errors
///
/// Propagates format-width overflows.
pub fn write_store(store: &Store) -> Result<Bytes, ContainerError> {
    let mut writer = Writer::new();
    let mut failed = None;
    store.for_each_entry(|gate, z| {
        if failed.is_none() {
            if let Err(e) = writer.add(gate, z) {
                failed = Some(e);
            }
        }
    });
    if let Some(e) = failed {
        return Err(e);
    }
    writer.finish()
}
