//! Registry-driven scenario runner: one pipeline, a whole fleet.
//!
//! For each declarative device description
//! ([`DeviceSpec`]) this module
//! builds the pulse library, compresses it with a matrix of codec
//! variants, round-trips every stream through a CWL container (and, for
//! plain streams, through a serving [`Store`]), verifies the decoded
//! samples are **bit-identical** on every path, and reports one
//! [`ScenarioRow`] per `(device, variant)` with compression ratio,
//! fidelity and size. The `tests/scenario_matrix.rs` suite, the
//! `registry_explorer` example and the informational per-device bench
//! rows all consume this one runner — "handles many scenarios" as an
//! enumerable matrix instead of a single fixture.

use crate::{
    write_report, ContainerError, ContainerScratch, FetchError, FetchSource, Reader, ReaderOptions,
    StreamPayload, Writer,
};
use compaqt_core::adaptive::AdaptiveCompressor;
use compaqt_core::compress::{Compressor, Variant};
use compaqt_core::engine::{DecodeScratch, DecompressionEngine};
use compaqt_core::overlap::OverlapCompressor;
use compaqt_core::stats::compress_library;
use compaqt_core::store::{Store, StoreConfig, StoreError};
use compaqt_core::CompressError;
use compaqt_dsp::metrics::mse;
use compaqt_pulse::library::{GateId, PulseLibrary};
use compaqt_pulse::registry::DeviceSpec;
use compaqt_pulse::waveform::Waveform;
use std::fmt;

/// One cell of the compression matrix: which codec path a scenario run
/// exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioVariant {
    /// A plain windowed/delta stream — servable through the [`Store`].
    Plain(Variant),
    /// An overlapped-window stream (container round-trip only).
    Overlap {
        /// Lapped window size.
        ws: usize,
    },
    /// An adaptive IDCT-bypass stream (container round-trip only).
    Adaptive(Variant),
}

impl ScenarioVariant {
    /// Human-readable label for rows and logs.
    pub fn label(&self) -> String {
        match self {
            ScenarioVariant::Plain(v) => v.label(),
            ScenarioVariant::Overlap { ws } => format!("Overlap (WS={ws})"),
            ScenarioVariant::Adaptive(v) => format!("Adaptive [{}]", v.label()),
        }
    }

    /// The full matrix: every codec family the repo implements — the
    /// delta baseline, full-length DCT, float and integer windowed DCTs
    /// at several window sizes, a lapped stream and an adaptive stream.
    pub fn full_matrix() -> Vec<ScenarioVariant> {
        vec![
            ScenarioVariant::Plain(Variant::Delta),
            ScenarioVariant::Plain(Variant::DctN),
            ScenarioVariant::Plain(Variant::DctW { ws: 16 }),
            ScenarioVariant::Plain(Variant::IntDctW { ws: 8 }),
            ScenarioVariant::Plain(Variant::IntDctW { ws: 16 }),
            ScenarioVariant::Plain(Variant::IntDctW { ws: 32 }),
            ScenarioVariant::Overlap { ws: 16 },
            ScenarioVariant::Adaptive(Variant::IntDctW { ws: 16 }),
        ]
    }

    /// A one-variant smoke matrix (the paper's design point) for runs
    /// where the full matrix would be too slow — debug-profile tests on
    /// the larger fleet devices.
    pub fn smoke_matrix() -> Vec<ScenarioVariant> {
        vec![ScenarioVariant::Plain(Variant::IntDctW { ws: 16 })]
    }
}

/// The outcome of one `(device, variant)` scenario run. All verification
/// (container round-trip, store round-trip, bit-exactness) has already
/// passed when a row is returned.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioRow {
    /// Registry device name.
    pub device: String,
    /// Device qubit count.
    pub qubits: usize,
    /// Variant label ([`ScenarioVariant::label`]).
    pub variant: String,
    /// Waveforms in the device's pulse library.
    pub gates: usize,
    /// Uncompressed library size at the vendor's packed sample width.
    pub uncompressed_bytes: usize,
    /// Finished CWL container size in bytes.
    pub container_bytes: usize,
    /// Overall compression ratio (old bits / new bits).
    pub ratio: f64,
    /// Mean per-waveform reconstruction MSE (fidelity).
    pub mean_mse: f64,
    /// Hot-set hit rate observed on the store re-fetch pass (`None` for
    /// lapped/adaptive streams, which the store cannot serve).
    pub store_hit_rate: Option<f64>,
}

/// Everything that can fail while running a scenario.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    /// The codec layer rejected a stream.
    Codec(CompressError),
    /// The container layer rejected bytes it produced (never expected).
    Container(ContainerError),
    /// The serving store rejected a fetch.
    Store(StoreError),
    /// A source-generic fetch path rejected a fetch.
    Fetch(FetchError),
    /// A decode path disagreed with the direct decode — the invariant
    /// the whole matrix exists to enforce.
    Mismatch {
        /// Device name.
        device: String,
        /// Variant label.
        variant: String,
        /// The gate whose samples differed.
        gate: String,
        /// Which path disagreed.
        path: &'static str,
    },
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Codec(e) => write!(f, "scenario codec failure: {e}"),
            ScenarioError::Container(e) => write!(f, "scenario container failure: {e}"),
            ScenarioError::Store(e) => write!(f, "scenario store failure: {e}"),
            ScenarioError::Fetch(e) => write!(f, "scenario fetch-source failure: {e}"),
            ScenarioError::Mismatch { device, variant, gate, path } => {
                write!(f, "bit mismatch on {path} for gate {gate} ({device}, {variant})")
            }
        }
    }
}

impl std::error::Error for ScenarioError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ScenarioError::Codec(e) => Some(e),
            ScenarioError::Container(e) => Some(e),
            ScenarioError::Store(e) => Some(e),
            ScenarioError::Fetch(e) => Some(e),
            ScenarioError::Mismatch { .. } => None,
        }
    }
}

impl From<CompressError> for ScenarioError {
    fn from(e: CompressError) -> Self {
        ScenarioError::Codec(e)
    }
}

impl From<ContainerError> for ScenarioError {
    fn from(e: ContainerError) -> Self {
        ScenarioError::Container(e)
    }
}

impl From<StoreError> for ScenarioError {
    fn from(e: StoreError) -> Self {
        ScenarioError::Store(e)
    }
}

impl From<FetchError> for ScenarioError {
    fn from(e: FetchError) -> Self {
        ScenarioError::Fetch(e)
    }
}

fn bits_equal(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Runs the scenario matrix for one device: build library, compress with
/// every listed variant, round-trip through a CWL container (plus the
/// [`Store`] for plain streams), verify bit-exactness, report rows.
///
/// # Errors
///
/// The first codec/container/store failure, or a [`ScenarioError::Mismatch`]
/// if any decode path is not bit-identical to the direct decode.
pub fn run_device(
    spec: &DeviceSpec,
    variants: &[ScenarioVariant],
) -> Result<Vec<ScenarioRow>, ScenarioError> {
    let library = spec.build_library();
    let uncompressed_bytes = library.total_storage_bytes(spec.vendor.params().sample_bits);
    let mut rows = Vec::with_capacity(variants.len());
    for variant in variants {
        let (container_bytes, ratio, mean_mse, store_hit_rate) = match variant {
            ScenarioVariant::Plain(v) => run_plain(spec, &library, *v, variant)?,
            ScenarioVariant::Overlap { ws } => run_overlap(spec, &library, *ws, variant)?,
            ScenarioVariant::Adaptive(v) => run_adaptive(spec, &library, *v, variant)?,
        };
        rows.push(ScenarioRow {
            device: spec.name.clone(),
            qubits: spec.n_qubits(),
            variant: variant.label(),
            gates: library.len(),
            uncompressed_bytes,
            container_bytes,
            ratio,
            mean_mse,
            store_hit_rate,
        });
    }
    Ok(rows)
}

/// Runs [`run_device`] over a list of descriptions, concatenating rows.
///
/// # Errors
///
/// Stops at the first device that fails (see [`run_device`]).
pub fn run_fleet<'a>(
    specs: impl IntoIterator<Item = &'a DeviceSpec>,
    variants: &[ScenarioVariant],
) -> Result<Vec<ScenarioRow>, ScenarioError> {
    let mut rows = Vec::new();
    for spec in specs {
        rows.extend(run_device(spec, variants)?);
    }
    Ok(rows)
}

fn mismatch(
    spec: &DeviceSpec,
    variant: &ScenarioVariant,
    gate: &GateId,
    path: &'static str,
) -> ScenarioError {
    ScenarioError::Mismatch {
        device: spec.name.clone(),
        variant: variant.label(),
        gate: gate.to_string(),
        path,
    }
}

/// Plain streams take the full trip: compress → container → `Reader`
/// random access → `Store` bulk load → `fetch_into` / `fetch_cached`,
/// every leg compared bit-for-bit against the engine's direct decode.
fn run_plain(
    spec: &DeviceSpec,
    library: &PulseLibrary,
    v: Variant,
    variant: &ScenarioVariant,
) -> Result<(usize, f64, f64, Option<f64>), ScenarioError> {
    let report = compress_library(library, &Compressor::new(v))?;
    let ratio = report.overall.ratio();
    let mean_mse = report.mean_mse();

    // Reference decodes, straight through the engine, before the report's
    // streams move anywhere.
    let engine = DecompressionEngine::for_variant(v)?;
    let mut scratch = DecodeScratch::new();
    let mut reference: Vec<(GateId, Vec<f64>, Vec<f64>)> =
        Vec::with_capacity(report.waveforms.len());
    for w in &report.waveforms {
        let (mut i, mut q) = (Vec::new(), Vec::new());
        engine.decompress_into(&w.compressed, &mut scratch, &mut i, &mut q)?;
        reference.push((w.gate.clone(), i, q));
    }

    let bytes = write_report(&report)?;
    let container_bytes = bytes.len();

    // Path 1: container random-access decode.
    let reader = Reader::new(bytes.clone())?;
    let mut cscratch = ContainerScratch::new();
    let (mut i_buf, mut q_buf) = (Vec::new(), Vec::new());
    for (gate, ri, rq) in &reference {
        reader.fetch_into(gate, &mut cscratch, &mut i_buf, &mut q_buf)?;
        if !bits_equal(&i_buf, ri) || !bits_equal(&q_buf, rq) {
            return Err(mismatch(spec, variant, gate, "Reader::fetch_into"));
        }
    }

    // Path 1b: source-generic serving straight from a lazily-validated
    // reader — the larger-than-RAM deployment shape, no store loaded.
    // Every decode is a first touch through the deferred-CRC gate and
    // must still be bit-exact.
    let lazy = Reader::open(bytes.clone(), ReaderOptions::lazy_crc())?;
    let source: &dyn FetchSource = &lazy;
    for (gate, ri, rq) in &reference {
        source.fetch_gate(gate, &mut cscratch, &mut i_buf, &mut q_buf)?;
        if !bits_equal(&i_buf, ri) || !bits_equal(&q_buf, rq) {
            return Err(mismatch(spec, variant, gate, "FetchSource::fetch_gate (lazy reader)"));
        }
    }
    drop(lazy);

    // Path 2: container → store bulk load, then single-gate serving.
    // `hot_capacity` is a global bound, so the library's own size is
    // exactly enough: no eviction during the verification scans.
    let config = StoreConfig { shards: 4, hot_capacity: library.len(), ..StoreConfig::default() };
    let store: Store = reader.into_store(config)?;
    for (gate, ri, rq) in &reference {
        store.fetch_into(gate, &mut i_buf, &mut q_buf)?;
        if !bits_equal(&i_buf, ri) || !bits_equal(&q_buf, rq) {
            return Err(mismatch(spec, variant, gate, "Store::fetch_into"));
        }
    }
    // Cached path twice: the first pass decodes (misses), the second must
    // be served hot and still bit-exact.
    for _ in 0..2 {
        for (gate, ri, rq) in &reference {
            let wf = store.fetch_cached(gate)?;
            if !bits_equal(wf.i(), ri) || !bits_equal(wf.q(), rq) {
                return Err(mismatch(spec, variant, gate, "Store::fetch_cached"));
            }
        }
    }
    let hit_rate = store.stats().hit_rate();
    Ok((container_bytes, ratio, mean_mse, Some(hit_rate)))
}

/// Lapped streams round-trip through the container as structured
/// payloads: the parsed stream must equal the staged one exactly, and
/// its decode must be bit-identical to the direct decode.
fn run_overlap(
    spec: &DeviceSpec,
    library: &PulseLibrary,
    ws: usize,
    variant: &ScenarioVariant,
) -> Result<(usize, f64, f64, Option<f64>), ScenarioError> {
    let compressor = OverlapCompressor::new(ws)?;
    let mut writer = Writer::new();
    let mut staged = Vec::with_capacity(library.len());
    let mut overall: Option<compaqt_dsp::metrics::CompressionRatio> = None;
    let mut mse_sum = 0.0;
    for (gate, wf) in library.iter_sorted() {
        let z = compressor.compress(wf)?;
        writer.add_overlap(gate, &z)?;
        let ratio = z.ratio();
        overall = Some(match overall {
            Some(acc) => acc.combine(&ratio),
            None => ratio,
        });
        let decoded = z.decompress()?;
        mse_sum += (mse(wf.i(), decoded.i()) + mse(wf.q(), decoded.q())) / 2.0;
        staged.push((gate.clone(), z, decoded));
    }
    let bytes = writer.finish()?;
    let reader = Reader::new(bytes.clone())?;
    for (gate, z, decoded) in &staged {
        let entry = reader.find(gate).ok_or_else(|| ContainerError::UnknownGate(gate.clone()))?;
        let StreamPayload::Overlap(parsed) = entry.read()? else {
            return Err(mismatch(spec, variant, gate, "Entry::read payload kind"));
        };
        if &parsed != z {
            return Err(mismatch(spec, variant, gate, "Overlap stream round-trip"));
        }
        let redecoded = parsed.decompress()?;
        if !waveforms_bit_equal(&redecoded, decoded) {
            return Err(mismatch(spec, variant, gate, "Overlap decode"));
        }
    }
    let ratio = overall.map_or(0.0, |r| r.ratio());
    let mean_mse = mse_sum / staged.len().max(1) as f64;
    Ok((bytes.len(), ratio, mean_mse, None))
}

/// A stream staged for the adaptive matrix cell: adaptive where the
/// pulse has a usable plateau, the plain windowed codec elsewhere (the
/// fallback the adaptive compressor documents for plateau-less pulses —
/// short DRAG 1Q gates have no flat top).
#[derive(Debug)]
enum StagedAdaptive {
    Plain(compaqt_core::compress::CompressedWaveform),
    Adaptive(compaqt_core::adaptive::AdaptiveCompressed),
}

/// Adaptive streams: same structured round-trip as lapped streams, with
/// the documented plain-codec fallback for plateau-less pulses — so one
/// container mixes both payload kinds, like a production library would.
fn run_adaptive(
    spec: &DeviceSpec,
    library: &PulseLibrary,
    v: Variant,
    variant: &ScenarioVariant,
) -> Result<(usize, f64, f64, Option<f64>), ScenarioError> {
    let compressor = AdaptiveCompressor::new(v);
    let fallback = Compressor::new(v);
    let mut writer = Writer::new();
    let mut staged = Vec::with_capacity(library.len());
    let mut overall: Option<compaqt_dsp::metrics::CompressionRatio> = None;
    let mut mse_sum = 0.0;
    for (gate, wf) in library.iter_sorted() {
        let (z, ratio, decoded) = match compressor.compress(wf) {
            Ok(z) => {
                writer.add_adaptive(gate, &z)?;
                let ratio = z.ratio();
                let (decoded, _) = z.decompress()?;
                (StagedAdaptive::Adaptive(z), ratio, decoded)
            }
            Err(CompressError::NoPlateau) => {
                let z = fallback.compress(wf)?;
                writer.add(gate, &z)?;
                let ratio = z.ratio();
                let decoded = z.decompress()?;
                (StagedAdaptive::Plain(z), ratio, decoded)
            }
            Err(e) => return Err(e.into()),
        };
        overall = Some(match overall {
            Some(acc) => acc.combine(&ratio),
            None => ratio,
        });
        mse_sum += (mse(wf.i(), decoded.i()) + mse(wf.q(), decoded.q())) / 2.0;
        staged.push((gate.clone(), z, decoded));
    }
    let bytes = writer.finish()?;
    let reader = Reader::new(bytes.clone())?;
    let mut adaptive_entries = 0usize;
    for (gate, z, decoded) in &staged {
        let entry = reader.find(gate).ok_or_else(|| ContainerError::UnknownGate(gate.clone()))?;
        let redecoded = match (entry.read()?, z) {
            (StreamPayload::Adaptive(parsed), StagedAdaptive::Adaptive(z)) => {
                if &parsed != z {
                    return Err(mismatch(spec, variant, gate, "Adaptive stream round-trip"));
                }
                adaptive_entries += 1;
                parsed.decompress()?.0
            }
            (StreamPayload::Plain(parsed), StagedAdaptive::Plain(z)) => {
                if &parsed != z {
                    return Err(mismatch(spec, variant, gate, "Plain-fallback round-trip"));
                }
                parsed.decompress()?
            }
            _ => return Err(mismatch(spec, variant, gate, "Entry::read payload kind")),
        };
        if !waveforms_bit_equal(&redecoded, decoded) {
            return Err(mismatch(spec, variant, gate, "Adaptive decode"));
        }
    }
    // Every library in the fleet has flat-top pulses (CR / readout /
    // iToffoli), so a matrix cell that silently degraded to all-plain
    // would be a bug, not a property of the input.
    if adaptive_entries == 0 {
        if let Some((gate, _, _)) = staged.first() {
            return Err(mismatch(spec, variant, gate, "no adaptive entries staged"));
        }
    }
    let ratio = overall.map_or(0.0, |r| r.ratio());
    let mean_mse = mse_sum / staged.len().max(1) as f64;
    Ok((bytes.len(), ratio, mean_mse, None))
}

fn waveforms_bit_equal(a: &Waveform, b: &Waveform) -> bool {
    bits_equal(a.i(), b.i()) && bits_equal(a.q(), b.q())
}

#[cfg(test)]
mod tests {
    use super::*;
    use compaqt_pulse::registry::{Registry, TopologyKind};
    use compaqt_pulse::vendor::Vendor;

    fn tiny_spec() -> DeviceSpec {
        DeviceSpec::transmon("tiny", Vendor::Ibm, TopologyKind::Line, 3, 0x7E57)
    }

    #[test]
    fn tiny_device_full_matrix_round_trips() {
        let rows = run_device(&tiny_spec(), &ScenarioVariant::full_matrix()).unwrap();
        assert_eq!(rows.len(), 8);
        for row in &rows {
            assert_eq!(row.device, "tiny");
            assert_eq!(row.qubits, 3);
            assert!(row.ratio > 1.0, "{}: ratio {}", row.variant, row.ratio);
            assert!(row.container_bytes > 0);
            assert!(row.mean_mse.is_finite());
        }
        // Plain rows exercised the store; lapped/adaptive rows could not.
        let plain = rows.iter().filter(|r| r.store_hit_rate.is_some()).count();
        assert_eq!(plain, 6);
        // The second fetch_cached pass must have hit the hot set.
        for row in rows.iter().filter(|r| r.store_hit_rate.is_some()) {
            assert!(row.store_hit_rate.unwrap() >= 0.5, "{}", row.variant);
        }
    }

    #[test]
    fn exotic_device_runs_the_matrix() {
        let spec = Registry::builtin().get("exotic-tableix").cloned().unwrap();
        let rows = run_device(&spec, &ScenarioVariant::smoke_matrix()).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].gates, 7);
        assert!(rows[0].ratio > 2.0, "exotic pulses compress well: {}", rows[0].ratio);
    }

    #[test]
    fn fleet_runner_concatenates_rows() {
        let specs = [tiny_spec(), DeviceSpec::exotic("x", 1)];
        let rows = run_fleet(specs.iter(), &ScenarioVariant::smoke_matrix()).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].device, "tiny");
        assert_eq!(rows[1].device, "x");
    }

    #[test]
    fn labels_are_distinct() {
        let labels: Vec<String> =
            ScenarioVariant::full_matrix().iter().map(|v| v.label()).collect();
        let mut dedup = labels.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(labels.len(), dedup.len());
    }
}
