//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) — the
//! checksum every container index entry records for its payload bytes.
//!
//! Table-driven, one table built at compile time. The polynomial and
//! bit order match zlib/PNG/`crc32fast`, so containers can be verified
//! by standard tooling.

/// The reflected IEEE 802.3 polynomial.
const POLY: u32 = 0xEDB8_8320;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut n = 0;
    while n < 256 {
        let mut c = n as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[n] = c;
        n += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// The CRC-32 of `data` (init `0xFFFFFFFF`, final xor `0xFFFFFFFF`).
///
/// # Example
///
/// ```
/// // The standard check vector.
/// assert_eq!(compaqt_io::crc32::crc32(b"123456789"), 0xCBF4_3926);
/// ```
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in data {
        c = TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn single_bit_damage_changes_the_sum() {
        let data = vec![0xA5u8; 64];
        let clean = crc32(&data);
        for k in 0..data.len() {
            for bit in 0..8 {
                let mut mangled = data.clone();
                mangled[k] ^= 1 << bit;
                assert_ne!(crc32(&mangled), clean, "flip at byte {k} bit {bit} undetected");
            }
        }
    }
}
