//! Shared wire codecs for the container's building blocks: gate ids,
//! variant tags, channel data and the three stream payload encodings.
//!
//! Everything is little-endian and bounds-checked on the way in: parse
//! helpers verify the bytes they are about to consume *exist* before
//! consuming them, and verify every count they are about to size a
//! buffer from is covered by remaining input — a lying length field
//! costs the attacker at least as many payload bytes as the allocation
//! it requests, so memory stays linear in the input.

use crate::ContainerError;
use bytes::{Buf, BufMut, BytesMut};
use compaqt_core::adaptive::{AdaptiveCompressed, Segment};
use compaqt_core::compress::{ChannelData, CompressedWaveform, Variant};
use compaqt_core::overlap::OverlapCompressed;
use compaqt_dsp::fixed::Q15;
use compaqt_dsp::rle::CodedWord;
use compaqt_pulse::library::{GateId, GateKind};

/// Fixed header size: magic + version + reserved + rate bits + count +
/// index bytes + payload bytes + index CRC-32.
pub(crate) const HEADER_BYTES: usize = 4 + 2 + 2 + 8 + 4 + 8 + 8 + 4;

/// Smallest possible index entry: a no-qubit built-in gate (2 bytes)
/// plus codec/variant tags (4) plus offset/len/crc (16).
pub(crate) const MIN_ENTRY_BYTES: u64 = 22;

/// What kind of compressed stream an entry's payload holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PayloadKind {
    /// A plain [`CompressedWaveform`] — the only kind the serving
    /// [`Store`](compaqt_core::store::Store) can hold.
    Plain,
    /// An [`OverlapCompressed`] lapped-window stream.
    Overlap,
    /// An [`AdaptiveCompressed`] IDCT-bypass segment list.
    Adaptive,
}

impl PayloadKind {
    pub(crate) fn tag(self) -> u8 {
        match self {
            PayloadKind::Plain => 0,
            PayloadKind::Overlap => 1,
            PayloadKind::Adaptive => 2,
        }
    }

    pub(crate) fn from_tag(tag: u8) -> Option<PayloadKind> {
        match tag {
            0 => Some(PayloadKind::Plain),
            1 => Some(PayloadKind::Overlap),
            2 => Some(PayloadKind::Adaptive),
            _ => None,
        }
    }
}

/// Fails with [`ContainerError::Truncated`] unless `n` more bytes
/// remain.
pub(crate) fn need<B: Buf>(buf: &B, n: usize) -> Result<(), ContainerError> {
    if buf.remaining() < n {
        Err(ContainerError::Truncated)
    } else {
        Ok(())
    }
}

// ---------------------------------------------------------------- gates

fn kind_tag(kind: &GateKind) -> u8 {
    match kind {
        GateKind::X => 0,
        GateKind::Sx => 1,
        GateKind::Cx => 2,
        GateKind::PhasedXz => 3,
        GateKind::Fsim => 4,
        GateKind::ISwap => 5,
        GateKind::Measure => 6,
        GateKind::Custom(_) => 7,
    }
}

pub(crate) fn put_gate(buf: &mut BytesMut, id: &GateId) -> Result<(), ContainerError> {
    buf.put_u8(kind_tag(&id.kind));
    if let GateKind::Custom(name) = &id.kind {
        if name.len() > usize::from(u16::MAX) {
            return Err(ContainerError::Unrepresentable("custom gate name longer than 64 KiB"));
        }
        buf.put_u16_le(name.len() as u16);
        buf.put_slice(name.as_bytes());
    }
    if id.qubits.len() > usize::from(u8::MAX) {
        return Err(ContainerError::Unrepresentable("more than 255 qubits on one gate"));
    }
    buf.put_u8(id.qubits.len() as u8);
    for &q in &id.qubits {
        buf.put_u16_le(q);
    }
    Ok(())
}

pub(crate) fn take_gate<B: Buf + AsRef<[u8]>>(buf: &mut B) -> Result<GateId, ContainerError> {
    let mut id = GateId { kind: GateKind::X, qubits: Vec::new() };
    take_gate_into(buf, &mut id)?;
    Ok(id)
}

/// Parses a gate id into a reused slot: the qubit list keeps its
/// capacity, and a custom name refills the slot's existing `String`
/// when both old and new kinds are custom — the request-parse half of
/// the wire server's zero-steady-state-allocation fetch path.
pub(crate) fn take_gate_into<B: Buf + AsRef<[u8]>>(
    buf: &mut B,
    slot: &mut GateId,
) -> Result<(), ContainerError> {
    need(buf, 1)?;
    match buf.get_u8() {
        0 => slot.kind = GateKind::X,
        1 => slot.kind = GateKind::Sx,
        2 => slot.kind = GateKind::Cx,
        3 => slot.kind = GateKind::PhasedXz,
        4 => slot.kind = GateKind::Fsim,
        5 => slot.kind = GateKind::ISwap,
        6 => slot.kind = GateKind::Measure,
        7 => {
            need(buf, 2)?;
            let len = usize::from(buf.get_u16_le());
            need(buf, len)?;
            let name = std::str::from_utf8(&buf.as_ref()[..len])
                .map_err(|_| ContainerError::IndexInvalid("custom gate name is not UTF-8"))?;
            if let GateKind::Custom(existing) = &mut slot.kind {
                existing.clear();
                existing.push_str(name);
            } else {
                slot.kind = GateKind::Custom(name.to_string());
            }
            buf.advance(len);
        }
        _ => return Err(ContainerError::IndexInvalid("unknown gate kind tag")),
    }
    need(buf, 1)?;
    let nq = usize::from(buf.get_u8());
    need(buf, 2 * nq)?;
    slot.qubits.clear();
    slot.qubits.extend((0..nq).map(|_| buf.get_u16_le()));
    Ok(())
}

// -------------------------------------------------------------- variants

pub(crate) fn encode_variant(v: Variant) -> Result<(u8, u16), ContainerError> {
    let ws16 = |ws: usize| {
        u16::try_from(ws).map_err(|_| ContainerError::Unrepresentable("window size beyond u16"))
    };
    Ok(match v {
        Variant::Delta => (0, 0),
        Variant::DctN => (1, 0),
        Variant::DctW { ws } => (2, ws16(ws)?),
        Variant::IntDctW { ws } => (3, ws16(ws)?),
    })
}

/// Decodes a variant tag pair, rejecting non-canonical forms (a window
/// size on a non-windowed variant) so every variant has exactly one
/// byte representation.
pub(crate) fn decode_variant(tag: u8, ws: u16) -> Result<Variant, &'static str> {
    match (tag, ws) {
        (0, 0) => Ok(Variant::Delta),
        (1, 0) => Ok(Variant::DctN),
        (0 | 1, _) => Err("window size on a non-windowed variant"),
        (2, _) => Ok(Variant::DctW { ws: usize::from(ws) }),
        (3, _) => Ok(Variant::IntDctW { ws: usize::from(ws) }),
        _ => Err("unknown variant tag"),
    }
}

// ------------------------------------------------------------ sample rate

pub(crate) fn check_rate(bits: u64, what: &'static str) -> Result<f64, ContainerError> {
    let rate = f64::from_bits(bits);
    if rate.is_finite() && rate > 0.0 {
        Ok(rate)
    } else {
        Err(ContainerError::PayloadInvalid(what))
    }
}

// -------------------------------------------------------------- channels

/// Spare-capacity pools for reused channel slots.
///
/// When a parse reshapes a slot to a *different* [`ChannelData`]
/// variant — a mixed-variant container served through one
/// [`ContainerScratch`](crate::ContainerScratch) does this constantly —
/// the displaced buffers park here instead of dropping their capacity,
/// so alternating shapes stays allocation-free once every pool is warm
/// (the out-of-crate twin of the encoder's spare-window reuse). Pool
/// sizes are bounded by the shape diversity of one slot, not by the
/// container.
#[derive(Debug, Default)]
pub(crate) struct SlotSpares {
    /// Spare per-window word lists.
    words: Vec<Vec<CodedWord>>,
    /// Spare outer window vectors (emptied, capacity kept).
    outers: Vec<Vec<Vec<CodedWord>>>,
    /// Spare `i16` sample/delta buffers.
    i16s: Vec<Vec<i16>>,
}

/// Parks a displaced channel value's buffers in the pools.
fn park(old: ChannelData, spares: &mut SlotSpares) {
    match old {
        ChannelData::Windows(mut outer) => {
            spares.words.append(&mut outer);
            spares.outers.push(outer);
        }
        ChannelData::Delta { deltas, .. } => spares.i16s.push(deltas),
        ChannelData::Raw(samples) => spares.i16s.push(samples),
    }
}

/// Reshapes a channel slot into `Windows` with `n` cleared word lists,
/// parking/retrieving every displaced buffer through `spares` so a
/// reused slot keeps all its capacity across waveforms of different
/// window counts *and* different channel shapes.
fn windows_slot<'a>(
    ch: &'a mut ChannelData,
    n: usize,
    spares: &mut SlotSpares,
) -> &'a mut Vec<Vec<CodedWord>> {
    if !matches!(ch, ChannelData::Windows(_)) {
        let fresh = ChannelData::Windows(spares.outers.pop().unwrap_or_default());
        park(std::mem::replace(ch, fresh), spares);
    }
    let ChannelData::Windows(windows) = ch else { unreachable!("just normalized to Windows") };
    while windows.len() > n {
        spares.words.push(windows.pop().expect("len checked"));
    }
    while windows.len() < n {
        windows.push(spares.words.pop().unwrap_or_default());
    }
    for w in windows.iter_mut() {
        w.clear();
    }
    windows
}

/// Reshapes a channel slot into `Raw`, returning its cleared buffer.
fn raw_slot<'a>(ch: &'a mut ChannelData, spares: &mut SlotSpares) -> &'a mut Vec<i16> {
    if !matches!(ch, ChannelData::Raw(_)) {
        let fresh = ChannelData::Raw(spares.i16s.pop().unwrap_or_default());
        park(std::mem::replace(ch, fresh), spares);
    }
    let ChannelData::Raw(samples) = ch else { unreachable!("just normalized to Raw") };
    samples.clear();
    samples
}

/// Reshapes a channel slot into `Delta`, setting the header fields and
/// returning its cleared delta buffer.
fn delta_slot<'a>(
    ch: &'a mut ChannelData,
    base: i16,
    bits: u32,
    spares: &mut SlotSpares,
) -> &'a mut Vec<i16> {
    if !matches!(ch, ChannelData::Delta { .. }) {
        let fresh =
            ChannelData::Delta { base, bits, deltas: spares.i16s.pop().unwrap_or_default() };
        park(std::mem::replace(ch, fresh), spares);
    }
    let ChannelData::Delta { base: b, bits: w, deltas } = ch else {
        unreachable!("just normalized to Delta")
    };
    *b = base;
    *w = bits;
    deltas.clear();
    deltas
}

/// A count field, width-checked: oversized values are a typed
/// [`ContainerError::Unrepresentable`] error, never a silent `as`
/// truncation (which would emit a CRC-consistent container that lies
/// about its own contents).
pub(crate) fn checked_u32(n: usize, what: &'static str) -> Result<u32, ContainerError> {
    u32::try_from(n).map_err(|_| ContainerError::Unrepresentable(what))
}

pub(crate) fn put_channel(buf: &mut BytesMut, channel: &ChannelData) -> Result<(), ContainerError> {
    match channel {
        ChannelData::Windows(windows) => {
            buf.put_u8(0);
            buf.put_u32_le(checked_u32(windows.len(), "more than 2^32 windows in a channel")?);
            for win in windows {
                let len = u16::try_from(win.len()).map_err(|_| {
                    ContainerError::Unrepresentable("more than 65535 words in one window")
                })?;
                buf.put_u16_le(len);
                for w in win {
                    buf.put_u16_le(w.pack());
                }
            }
        }
        ChannelData::Delta { base, bits, deltas } => {
            buf.put_u8(1);
            buf.put_i16_le(*base);
            buf.put_u8(*bits as u8);
            buf.put_u32_le(checked_u32(deltas.len(), "more than 2^32 deltas in a channel")?);
            for &d in deltas {
                buf.put_i16_le(d);
            }
        }
        ChannelData::Raw(samples) => {
            buf.put_u8(2);
            buf.put_u32_le(checked_u32(samples.len(), "more than 2^32 raw samples in a channel")?);
            for &s in samples {
                buf.put_i16_le(s);
            }
        }
    }
    Ok(())
}

/// Parses one channel into a reused slot. Counts are covered-by-input
/// checked *before* the slot is resized from them: `n` windows need at
/// least `2n` bytes of word-length fields, `n` deltas/samples need `2n`
/// bytes of words.
pub(crate) fn take_channel_into<B: Buf>(
    buf: &mut B,
    ch: &mut ChannelData,
    spares: &mut SlotSpares,
) -> Result<(), ContainerError> {
    need(buf, 1)?;
    match buf.get_u8() {
        0 => {
            need(buf, 4)?;
            let n_windows = buf.get_u32_le() as usize;
            need(buf, n_windows.checked_mul(2).ok_or(ContainerError::Truncated)?)?;
            let windows = windows_slot(ch, n_windows, spares);
            for win in windows.iter_mut() {
                need(buf, 2)?;
                let len = usize::from(buf.get_u16_le());
                need(buf, 2 * len)?;
                win.extend((0..len).map(|_| CodedWord::unpack(buf.get_u16_le())));
            }
            Ok(())
        }
        1 => {
            need(buf, 2 + 1 + 4)?;
            let base = buf.get_i16_le();
            let bits = u32::from(buf.get_u8());
            let n = buf.get_u32_le() as usize;
            need(buf, n.checked_mul(2).ok_or(ContainerError::Truncated)?)?;
            let deltas = delta_slot(ch, base, bits, spares);
            deltas.extend((0..n).map(|_| buf.get_i16_le()));
            Ok(())
        }
        2 => {
            need(buf, 4)?;
            let n = buf.get_u32_le() as usize;
            need(buf, n.checked_mul(2).ok_or(ContainerError::Truncated)?)?;
            let samples = raw_slot(ch, spares);
            samples.extend((0..n).map(|_| buf.get_i16_le()));
            Ok(())
        }
        _ => Err(ContainerError::PayloadInvalid("unknown channel kind")),
    }
}

// ----------------------------------------------------- stream name field

fn put_name(buf: &mut BytesMut, name: &str) -> Result<(), ContainerError> {
    if name.len() > usize::from(u16::MAX) {
        return Err(ContainerError::Unrepresentable("waveform name longer than 64 KiB"));
    }
    buf.put_u16_le(name.len() as u16);
    buf.put_slice(name.as_bytes());
    Ok(())
}

fn take_name_into<B: Buf + AsRef<[u8]>>(
    buf: &mut B,
    out: &mut String,
) -> Result<(), ContainerError> {
    need(buf, 2)?;
    let len = usize::from(buf.get_u16_le());
    need(buf, len)?;
    let name = std::str::from_utf8(&buf.as_ref()[..len])
        .map_err(|_| ContainerError::PayloadInvalid("waveform name is not UTF-8"))?;
    out.clear();
    out.push_str(name);
    buf.advance(len);
    Ok(())
}

// ------------------------------------------------------- plain payloads

pub(crate) fn put_plain(buf: &mut BytesMut, z: &CompressedWaveform) -> Result<(), ContainerError> {
    put_name(buf, &z.name)?;
    let (tag, ws) = encode_variant(z.variant)?;
    buf.put_u8(tag);
    buf.put_u16_le(ws);
    buf.put_u32_le(checked_u32(z.n_samples, "more than 2^32 samples in a waveform")?);
    buf.put_u64_le(z.sample_rate_gs.to_bits());
    put_channel(buf, &z.i)?;
    put_channel(buf, &z.q)?;
    Ok(())
}

/// Parses a plain payload into a reused stream slot — the
/// steady-state-allocation-free half of the random-access decode path.
pub(crate) fn take_plain_into<B: Buf + AsRef<[u8]>>(
    buf: &mut B,
    slot: &mut CompressedWaveform,
    spares: &mut SlotSpares,
) -> Result<(), ContainerError> {
    take_name_into(buf, &mut slot.name)?;
    need(buf, 1 + 2 + 4 + 8)?;
    let tag = buf.get_u8();
    let ws = buf.get_u16_le();
    slot.variant = decode_variant(tag, ws).map_err(ContainerError::PayloadInvalid)?;
    slot.n_samples = buf.get_u32_le() as usize;
    if slot.n_samples == 0 {
        return Err(ContainerError::PayloadInvalid("zero sample count"));
    }
    slot.sample_rate_gs = check_rate(buf.get_u64_le(), "sample rate is not positive finite")?;
    take_channel_into(buf, &mut slot.i, spares)?;
    take_channel_into(buf, &mut slot.q, spares)?;
    Ok(())
}

// ----------------------------------------------------- overlap payloads

pub(crate) fn put_overlap(buf: &mut BytesMut, z: &OverlapCompressed) -> Result<(), ContainerError> {
    put_name(buf, &z.name)?;
    if z.ws > usize::from(u16::MAX) {
        return Err(ContainerError::Unrepresentable("overlap window size beyond u16"));
    }
    buf.put_u16_le(z.ws as u16);
    buf.put_u32_le(checked_u32(z.n_samples, "more than 2^32 samples in a waveform")?);
    buf.put_u64_le(z.sample_rate_gs.to_bits());
    put_channel(buf, &z.i)?;
    put_channel(buf, &z.q)?;
    Ok(())
}

pub(crate) fn take_overlap<B: Buf + AsRef<[u8]>>(
    buf: &mut B,
) -> Result<OverlapCompressed, ContainerError> {
    let mut z = OverlapCompressed::empty();
    take_name_into(buf, &mut z.name)?;
    need(buf, 2 + 4 + 8)?;
    z.ws = usize::from(buf.get_u16_le());
    z.n_samples = buf.get_u32_le() as usize;
    if z.n_samples == 0 {
        return Err(ContainerError::PayloadInvalid("zero sample count"));
    }
    z.sample_rate_gs = check_rate(buf.get_u64_le(), "sample rate is not positive finite")?;
    let mut spares = SlotSpares::default();
    take_channel_into(buf, &mut z.i, &mut spares)?;
    take_channel_into(buf, &mut z.q, &mut spares)?;
    Ok(z)
}

// ---------------------------------------------------- adaptive payloads

pub(crate) fn put_adaptive(
    buf: &mut BytesMut,
    z: &AdaptiveCompressed,
) -> Result<(), ContainerError> {
    put_name(buf, &z.name)?;
    let (tag, ws) = encode_variant(z.variant)?;
    buf.put_u8(tag);
    buf.put_u16_le(ws);
    buf.put_u32_le(checked_u32(z.n_samples, "more than 2^32 samples in a waveform")?);
    buf.put_u64_le(z.sample_rate_gs.to_bits());
    buf.put_u32_le(checked_u32(z.segments.len(), "more than 2^32 adaptive segments")?);
    for seg in &z.segments {
        match seg {
            Segment::Windows(ramp) => {
                buf.put_u8(0);
                put_plain(buf, ramp)?;
            }
            Segment::Constant { i_value, q_value, len } => {
                buf.put_u8(1);
                buf.put_i16_le(i_value.raw());
                buf.put_i16_le(q_value.raw());
                buf.put_u32_le(checked_u32(*len, "plateau run beyond 2^32 samples")?);
            }
        }
    }
    Ok(())
}

pub(crate) fn take_adaptive<B: Buf + AsRef<[u8]>>(
    buf: &mut B,
) -> Result<AdaptiveCompressed, ContainerError> {
    let mut name = String::new();
    take_name_into(buf, &mut name)?;
    need(buf, 1 + 2 + 4 + 8 + 4)?;
    let tag = buf.get_u8();
    let ws = buf.get_u16_le();
    let variant = decode_variant(tag, ws).map_err(ContainerError::PayloadInvalid)?;
    let n_samples = buf.get_u32_le() as usize;
    if n_samples == 0 {
        return Err(ContainerError::PayloadInvalid("zero sample count"));
    }
    let sample_rate_gs = check_rate(buf.get_u64_le(), "sample rate is not positive finite")?;
    let n_segments = buf.get_u32_le() as usize;
    // Every segment costs at least one tag byte, so the claim is
    // covered by input before it sizes anything.
    need(buf, n_segments)?;
    let mut segments = Vec::with_capacity(n_segments);
    let mut spares = SlotSpares::default();
    for _ in 0..n_segments {
        need(buf, 1)?;
        match buf.get_u8() {
            0 => {
                let mut ramp = CompressedWaveform::empty();
                take_plain_into(buf, &mut ramp, &mut spares)?;
                segments.push(Segment::Windows(ramp));
            }
            1 => {
                need(buf, 2 + 2 + 4)?;
                let i_value = Q15::from_raw(buf.get_i16_le());
                let q_value = Q15::from_raw(buf.get_i16_le());
                let len = buf.get_u32_le() as usize;
                segments.push(Segment::Constant { i_value, q_value, len });
            }
            _ => return Err(ContainerError::PayloadInvalid("unknown segment tag")),
        }
    }
    Ok(AdaptiveCompressed { name, n_samples, sample_rate_gs, variant, segments })
}
