//! The CWS wire protocol: CRC-framed request/response messages for
//! serving a compressed waveform library over a byte stream.
//!
//! This is the network half of the paper's deployment model: the host
//! keeps the *compressed* library (in a [`Store`](compaqt_core::store::Store))
//! and controllers fetch single gates over the wire, decompressing
//! locally — waveforms cross the network in exactly the CWL entry
//! encoding (the same codec behind [`Entry::payload`](crate::Entry::payload)),
//! so a served stream is byte-identical to the container's payload for
//! the same gate.
//!
//! # Frame layout (little endian)
//!
//! ```text
//! frame   := magic:u32 version:u16 kind:u16 len:u32 payload:len crc:u32
//! crc     := CRC-32 (IEEE) over every preceding byte of the frame
//! ```
//!
//! The 12-byte header is validated *before* the payload is read:
//! magic, version and kind gate garbage early, and `len` is checked
//! against the receiver's frame cap before a single payload byte is
//! buffered — a lying length field can never size an allocation. The
//! trailing CRC-32 covers header and payload, so a flipped bit
//! anywhere in the frame is a typed [`ProtocolError`], never a
//! mis-parse.
//!
//! # Messages
//!
//! | request | payload | response | payload |
//! |---|---|---|---|
//! | [`FrameKind::Ping`] | `nonce:u64` | [`FrameKind::Pong`] | echoed nonce |
//! | [`FrameKind::FetchGate`] | gate id | [`FrameKind::Gate`] | one plain stream |
//! | [`FrameKind::FetchMany`] | `count:u32` gate ids | [`FrameKind::GateBatch`] | `count:u32` streams, request order |
//! | [`FrameKind::ListGates`] | empty | [`FrameKind::GateList`] | `count:u32` gate ids, sorted |
//! | [`FrameKind::LibraryDigest`] | empty | [`FrameKind::Digest`] | [`LibraryDigest`] |
//! | [`FrameKind::Metrics`] | empty | [`FrameKind::MetricsReport`] | an encoded [`Snapshot`] |
//! | *(any)* | | [`FrameKind::Error`] | `code:u8 len:u16 detail:utf8` |
//!
//! The metrics report payload (all little endian):
//!
//! ```text
//! report    := n_samples:u32 sample* n_events:u32 event* dropped:u64
//! sample    := name_len:u16 name:utf8 tag:u8 value
//! value     := counter/gauge (tag 1/2): v:u64
//!            | histogram (tag 3): nonzero:u8 (bucket:u8 count:u64)*
//! event     := kind:u8 a:u64 b:u64 t_ns:u64
//! ```
//!
//! Histograms ship sparse (only non-empty log2 buckets, strictly
//! ascending — a canonical encoding, so equal snapshots encode to
//! identical bytes) and events carry the [`TraceKind`] tag byte.
//!
//! Gate ids and plain streams reuse the container codec, so the
//! parsing rules (bounds checks, covered-by-input counts, canonical
//! variants) are identical on disk and on the wire.

use crate::crc32::crc32;
use crate::format::{need, put_gate, take_gate, take_gate_into};
use crate::ContainerError;
use bytes::{Buf, BufMut, BytesMut};
use compaqt_obs::{HistogramSnapshot, Sample, Snapshot, TraceEvent, TraceKind, Value, BUCKETS};
use compaqt_pulse::library::GateId;
use std::fmt;
use std::io::Read;

/// Magic number opening every CWS frame (`"CWS\0"` little-endian).
pub const WIRE_MAGIC: u32 = u32::from_le_bytes(*b"CWS\0");

/// Wire protocol version this crate speaks.
pub const WIRE_VERSION: u16 = 1;

/// Frame header size: magic + version + kind + payload length.
pub const FRAME_HEADER_BYTES: usize = 4 + 2 + 2 + 4;

/// Frame trailer size: the CRC-32 over header and payload.
pub const FRAME_TRAILER_BYTES: usize = 4;

/// Default cap on a frame's payload length (8 MiB): large enough for
/// any single compressed waveform, small enough that a hostile length
/// claim cannot balloon a connection's buffer.
pub const DEFAULT_MAX_FRAME_BYTES: u32 = 8 * 1024 * 1024;

/// Every message kind the protocol defines. Requests flow client →
/// server; responses (tags with the high bit set) flow back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// Liveness probe carrying a `u64` nonce.
    Ping,
    /// Fetch one gate's compressed stream.
    FetchGate,
    /// Fetch a batch of gates' compressed streams in one round trip.
    FetchMany,
    /// List every gate the server holds.
    ListGates,
    /// Summarize the served library (count, bytes, fingerprint).
    LibraryDigest,
    /// Scrape the server's telemetry snapshot.
    Metrics,
    /// Response to [`FrameKind::Ping`]: the echoed nonce.
    Pong,
    /// Response to [`FrameKind::FetchGate`]: one plain stream.
    Gate,
    /// Response to [`FrameKind::FetchMany`]: streams in request order.
    GateBatch,
    /// Response to [`FrameKind::ListGates`]: sorted gate ids.
    GateList,
    /// Response to [`FrameKind::LibraryDigest`]: a [`LibraryDigest`].
    Digest,
    /// Response to [`FrameKind::Metrics`]: an encoded [`Snapshot`].
    MetricsReport,
    /// Typed failure response; payload is `code:u8 len:u16 detail`.
    Error,
}

impl FrameKind {
    /// The on-wire tag.
    pub fn tag(self) -> u16 {
        match self {
            FrameKind::Ping => 0x0001,
            FrameKind::FetchGate => 0x0002,
            FrameKind::FetchMany => 0x0003,
            FrameKind::ListGates => 0x0004,
            FrameKind::LibraryDigest => 0x0005,
            FrameKind::Metrics => 0x0006,
            FrameKind::Pong => 0x8001,
            FrameKind::Gate => 0x8002,
            FrameKind::GateBatch => 0x8003,
            FrameKind::GateList => 0x8004,
            FrameKind::Digest => 0x8005,
            FrameKind::MetricsReport => 0x8006,
            FrameKind::Error => 0x80FF,
        }
    }

    /// Decodes an on-wire tag.
    pub fn from_tag(tag: u16) -> Option<FrameKind> {
        match tag {
            0x0001 => Some(FrameKind::Ping),
            0x0002 => Some(FrameKind::FetchGate),
            0x0003 => Some(FrameKind::FetchMany),
            0x0004 => Some(FrameKind::ListGates),
            0x0005 => Some(FrameKind::LibraryDigest),
            0x0006 => Some(FrameKind::Metrics),
            0x8001 => Some(FrameKind::Pong),
            0x8002 => Some(FrameKind::Gate),
            0x8003 => Some(FrameKind::GateBatch),
            0x8004 => Some(FrameKind::GateList),
            0x8005 => Some(FrameKind::Digest),
            0x8006 => Some(FrameKind::MetricsReport),
            0x80FF => Some(FrameKind::Error),
            _ => None,
        }
    }

    /// `true` for request kinds (client → server).
    pub fn is_request(self) -> bool {
        self.tag() & 0x8000 == 0
    }
}

/// Application-level failure codes carried by [`FrameKind::Error`]
/// responses. Unlike a [`ProtocolError`] (broken framing, connection
/// closed), an error *response* answers a well-framed request and the
/// connection stays usable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The server holds no waveform for the requested gate.
    UnknownGate,
    /// The server is at its connection cap; retry later.
    Busy,
    /// The request frame was well-framed but its payload was malformed
    /// (reported best-effort before the server closes).
    Malformed,
    /// The server failed internally while encoding a response.
    Internal,
}

impl ErrorCode {
    /// The on-wire code byte.
    pub fn tag(self) -> u8 {
        match self {
            ErrorCode::UnknownGate => 1,
            ErrorCode::Busy => 2,
            ErrorCode::Malformed => 3,
            ErrorCode::Internal => 4,
        }
    }

    /// Decodes an on-wire code byte.
    pub fn from_tag(tag: u8) -> Option<ErrorCode> {
        match tag {
            1 => Some(ErrorCode::UnknownGate),
            2 => Some(ErrorCode::Busy),
            3 => Some(ErrorCode::Malformed),
            4 => Some(ErrorCode::Internal),
            _ => None,
        }
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ErrorCode::UnknownGate => write!(f, "unknown gate"),
            ErrorCode::Busy => write!(f, "server busy"),
            ErrorCode::Malformed => write!(f, "malformed request"),
            ErrorCode::Internal => write!(f, "internal server error"),
        }
    }
}

/// Typed rejection of a damaged or hostile frame. Any of these on a
/// connection means the byte stream can no longer be trusted: the
/// receiver reports best-effort and closes.
#[derive(Debug, Clone, PartialEq)]
pub enum ProtocolError {
    /// The frame does not open with the CWS magic number.
    BadMagic,
    /// The peer speaks an incompatible protocol version.
    VersionSkew {
        /// The version the frame carried.
        found: u16,
    },
    /// The kind tag names no known message.
    UnknownKind(u16),
    /// The declared payload length exceeds the receiver's cap.
    FrameTooLarge {
        /// The length the header claimed.
        claimed: u32,
        /// The receiver's configured cap.
        max: u32,
    },
    /// The stream ended (or the buffer ran out) mid-frame.
    Truncated,
    /// The frame's CRC-32 does not match its bytes.
    CrcMismatch,
    /// The payload parsed but left unconsumed bytes behind.
    TrailingBytes,
    /// A payload field is malformed for the frame's kind.
    Malformed(&'static str),
    /// A gate id or stream inside the payload failed the container
    /// codec's validation.
    Payload(ContainerError),
    /// The peer answered with a kind the conversation didn't ask for.
    UnexpectedKind(u16),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::BadMagic => write!(f, "not a CWS frame"),
            ProtocolError::VersionSkew { found } => {
                write!(f, "wire version {found} is not the supported version {WIRE_VERSION}")
            }
            ProtocolError::UnknownKind(tag) => write!(f, "unknown frame kind {tag:#06x}"),
            ProtocolError::FrameTooLarge { claimed, max } => {
                write!(f, "frame claims {claimed} payload bytes, cap is {max}")
            }
            ProtocolError::Truncated => write!(f, "frame truncated"),
            ProtocolError::CrcMismatch => write!(f, "frame checksum mismatch"),
            ProtocolError::TrailingBytes => write!(f, "frame payload has trailing bytes"),
            ProtocolError::Malformed(what) => write!(f, "malformed frame payload: {what}"),
            ProtocolError::Payload(e) => write!(f, "malformed frame payload: {e}"),
            ProtocolError::UnexpectedKind(tag) => {
                write!(f, "unexpected frame kind {tag:#06x} for this conversation")
            }
        }
    }
}

impl std::error::Error for ProtocolError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtocolError::Payload(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ContainerError> for ProtocolError {
    fn from(e: ContainerError) -> Self {
        ProtocolError::Payload(e)
    }
}

/// A served library's summary: what a controller compares against its
/// cached copy to decide whether to refresh.
///
/// The fingerprint is an order-independent fold (wrapping sum of one
/// FNV-1a hash per entry over the gate id and its encoded stream), so
/// it is stable under the store's unspecified visit order and changes
/// whenever any gate is added, removed or recalibrated. It is a
/// change detector, **not** a cryptographic commitment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LibraryDigest {
    /// Number of gates served.
    pub gates: u32,
    /// Total encoded bytes across every served stream.
    pub payload_bytes: u64,
    /// Order-independent content fingerprint.
    pub fingerprint: u64,
}

/// FNV-1a over a byte slice; the digest's per-entry hash.
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

// ------------------------------------------------------------- framing

/// Starts a frame of `kind` in `out` (cleared first): header with a
/// zero length field, to be patched by [`end_frame`].
pub fn begin_frame(out: &mut BytesMut, kind: FrameKind) {
    out.clear();
    out.put_u32_le(WIRE_MAGIC);
    out.put_u16_le(WIRE_VERSION);
    out.put_u16_le(kind.tag());
    out.put_u32_le(0); // payload length, patched by end_frame
}

/// Finishes the frame begun by [`begin_frame`]: back-patches the
/// payload length and appends the CRC-32 over everything before it.
///
/// # Panics
///
/// Panics if the payload exceeds `u32::MAX` bytes (no representable
/// waveform library comes within orders of magnitude of that).
pub fn end_frame(out: &mut BytesMut) {
    let len = u32::try_from(out.len() - FRAME_HEADER_BYTES)
        .expect("frame payload exceeds u32::MAX bytes");
    out[8..12].copy_from_slice(&len.to_le_bytes());
    let crc = crc32(&out[..]);
    out.put_u32_le(crc);
}

/// Validates and splits one complete in-memory frame into its kind and
/// payload. Total: every hostile input is a typed [`ProtocolError`],
/// never a panic, and nothing is allocated.
pub fn parse_frame(frame: &[u8], max_payload: u32) -> Result<(FrameKind, &[u8]), ProtocolError> {
    if frame.len() < FRAME_HEADER_BYTES + FRAME_TRAILER_BYTES {
        return Err(ProtocolError::Truncated);
    }
    let mut header = &frame[..FRAME_HEADER_BYTES];
    let (kind, len) = parse_header(&mut header, max_payload)?;
    let total = FRAME_HEADER_BYTES + len + FRAME_TRAILER_BYTES;
    if frame.len() < total {
        return Err(ProtocolError::Truncated);
    }
    if frame.len() > total {
        return Err(ProtocolError::TrailingBytes);
    }
    check_crc(frame)?;
    Ok((kind, &frame[FRAME_HEADER_BYTES..FRAME_HEADER_BYTES + len]))
}

/// Validates a frame header, returning its kind and payload length.
/// Field order mirrors the wire: magic, version, kind, then length —
/// so garbage fails on the cheapest check first.
fn parse_header(header: &mut &[u8], max_payload: u32) -> Result<(FrameKind, usize), ProtocolError> {
    if header.get_u32_le() != WIRE_MAGIC {
        return Err(ProtocolError::BadMagic);
    }
    let version = header.get_u16_le();
    if version != WIRE_VERSION {
        return Err(ProtocolError::VersionSkew { found: version });
    }
    let tag = header.get_u16_le();
    let kind = FrameKind::from_tag(tag).ok_or(ProtocolError::UnknownKind(tag))?;
    let len = header.get_u32_le();
    if len > max_payload {
        return Err(ProtocolError::FrameTooLarge { claimed: len, max: max_payload });
    }
    Ok((kind, len as usize))
}

/// Checks a complete frame's trailing CRC-32.
fn check_crc(frame: &[u8]) -> Result<(), ProtocolError> {
    let body = frame.len() - FRAME_TRAILER_BYTES;
    let mut trailer = &frame[body..];
    if crc32(&frame[..body]) != trailer.get_u32_le() {
        return Err(ProtocolError::CrcMismatch);
    }
    Ok(())
}

/// What [`read_frame`] found on the stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameRead {
    /// A complete validated frame now fills the buffer; its payload is
    /// `buf[FRAME_HEADER_BYTES .. buf.len() - FRAME_TRAILER_BYTES]`.
    Frame(FrameKind),
    /// The peer closed cleanly at a frame boundary (no bytes read).
    Eof,
}

/// A failure while reading one frame from a stream.
#[derive(Debug)]
pub enum ReadFrameError {
    /// The transport failed (including read timeouts).
    Io(std::io::Error),
    /// The bytes violated the framing rules.
    Protocol(ProtocolError),
}

impl fmt::Display for ReadFrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadFrameError::Io(e) => write!(f, "frame read failed: {e}"),
            ReadFrameError::Protocol(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ReadFrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReadFrameError::Io(e) => Some(e),
            ReadFrameError::Protocol(e) => Some(e),
        }
    }
}

/// Reads and validates one frame from a blocking stream into a
/// reusable buffer. The header is validated **before** the payload is
/// buffered, so a hostile length claim costs nothing; `buf` keeps its
/// capacity across calls, so a steady-state connection reads without
/// allocating. EOF cleanly at a frame boundary is [`FrameRead::Eof`];
/// EOF mid-frame is [`ProtocolError::Truncated`].
pub fn read_frame(
    stream: &mut impl Read,
    buf: &mut Vec<u8>,
    max_payload: u32,
) -> Result<FrameRead, ReadFrameError> {
    buf.clear();
    buf.resize(FRAME_HEADER_BYTES, 0);
    if !fill(stream, &mut buf[..], true)? {
        return Ok(FrameRead::Eof);
    }
    let mut header = &buf[..];
    let (kind, len) = parse_header(&mut header, max_payload).map_err(ReadFrameError::Protocol)?;
    let total = FRAME_HEADER_BYTES + len + FRAME_TRAILER_BYTES;
    buf.resize(total, 0);
    fill(stream, &mut buf[FRAME_HEADER_BYTES..], false)?;
    check_crc(buf).map_err(ReadFrameError::Protocol)?;
    Ok(FrameRead::Frame(kind))
}

/// Fills `chunk` from the stream. Returns `Ok(false)` only when
/// `eof_ok` and the stream ended before the first byte; EOF anywhere
/// else is [`ProtocolError::Truncated`].
fn fill(stream: &mut impl Read, chunk: &mut [u8], eof_ok: bool) -> Result<bool, ReadFrameError> {
    let mut filled = 0usize;
    while filled < chunk.len() {
        match stream.read(&mut chunk[filled..]) {
            Ok(0) => {
                return if eof_ok && filled == 0 {
                    Ok(false)
                } else {
                    Err(ReadFrameError::Protocol(ProtocolError::Truncated))
                };
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(ReadFrameError::Io(e)),
        }
    }
    Ok(true)
}

// ----------------------------------------------------------- requests

/// Encodes a complete [`FrameKind::Ping`] frame.
pub fn encode_ping(out: &mut BytesMut, nonce: u64) {
    begin_frame(out, FrameKind::Ping);
    out.put_u64_le(nonce);
    end_frame(out);
}

/// Encodes a complete [`FrameKind::FetchGate`] frame.
///
/// # Errors
///
/// [`ContainerError::Unrepresentable`] if the gate id exceeds the
/// codec's field widths.
pub fn encode_fetch_gate(out: &mut BytesMut, gate: &GateId) -> Result<(), ContainerError> {
    begin_frame(out, FrameKind::FetchGate);
    put_gate(out, gate)?;
    end_frame(out);
    Ok(())
}

/// Encodes a complete [`FrameKind::FetchMany`] frame.
///
/// # Errors
///
/// [`ContainerError::Unrepresentable`] if the batch exceeds `u32`
/// gates or a gate id exceeds the codec's field widths.
pub fn encode_fetch_many(out: &mut BytesMut, gates: &[GateId]) -> Result<(), ContainerError> {
    begin_frame(out, FrameKind::FetchMany);
    out.put_u32_le(crate::format::checked_u32(gates.len(), "more than 2^32 gates in one batch")?);
    for gate in gates {
        put_gate(out, gate)?;
    }
    end_frame(out);
    Ok(())
}

/// Encodes a complete [`FrameKind::ListGates`] frame (empty payload).
pub fn encode_list_gates(out: &mut BytesMut) {
    begin_frame(out, FrameKind::ListGates);
    end_frame(out);
}

/// Encodes a complete [`FrameKind::LibraryDigest`] frame (empty
/// payload).
pub fn encode_library_digest(out: &mut BytesMut) {
    begin_frame(out, FrameKind::LibraryDigest);
    end_frame(out);
}

/// Encodes a complete [`FrameKind::Metrics`] frame (empty payload).
pub fn encode_metrics(out: &mut BytesMut) {
    begin_frame(out, FrameKind::Metrics);
    end_frame(out);
}

// ---------------------------------------------------------- responses

/// Encodes a complete [`FrameKind::Error`] frame. Detail strings
/// longer than `u16::MAX` bytes are truncated at a character boundary.
pub fn encode_error(out: &mut BytesMut, code: ErrorCode, detail: &str) {
    let mut cut = detail.len().min(usize::from(u16::MAX));
    while !detail.is_char_boundary(cut) {
        cut -= 1;
    }
    begin_frame(out, FrameKind::Error);
    out.put_u8(code.tag());
    out.put_u16_le(cut as u16);
    out.put_slice(&detail.as_bytes()[..cut]);
    end_frame(out);
}

/// Encodes a complete [`FrameKind::MetricsReport`] frame carrying a
/// telemetry [`Snapshot`] in the sparse layout of the [module
/// docs](self). The encoding is canonical — equal snapshots produce
/// identical bytes — which is what lets tests bit-check a scraped
/// report against a locally rendered one.
///
/// # Errors
///
/// [`ContainerError::Unrepresentable`] if a metric name exceeds
/// `u16::MAX` bytes or a count exceeds `u32::MAX`.
pub fn encode_metrics_report(out: &mut BytesMut, snap: &Snapshot) -> Result<(), ContainerError> {
    begin_frame(out, FrameKind::MetricsReport);
    out.put_u32_le(crate::format::checked_u32(
        snap.samples.len(),
        "more than 2^32 metric samples in one report",
    )?);
    for sample in &snap.samples {
        let name = sample.name.as_bytes();
        if name.len() > usize::from(u16::MAX) {
            return Err(ContainerError::Unrepresentable("metric name exceeds u16::MAX bytes"));
        }
        out.put_u16_le(name.len() as u16);
        out.put_slice(name);
        match &sample.value {
            Value::Counter(v) => {
                out.put_u8(1);
                out.put_u64_le(*v);
            }
            Value::Gauge(v) => {
                out.put_u8(2);
                out.put_u64_le(*v);
            }
            Value::Histogram(h) => {
                out.put_u8(3);
                // At most BUCKETS (= 64) non-empty buckets: fits u8.
                let nonzero = h.buckets.iter().filter(|&&c| c != 0).count() as u8;
                out.put_u8(nonzero);
                for (b, &count) in h.buckets.iter().enumerate() {
                    if count != 0 {
                        out.put_u8(b as u8);
                        out.put_u64_le(count);
                    }
                }
            }
        }
    }
    out.put_u32_le(crate::format::checked_u32(
        snap.events.len(),
        "more than 2^32 trace events in one report",
    )?);
    for e in &snap.events {
        out.put_u8(e.kind.tag());
        out.put_u64_le(e.a);
        out.put_u64_le(e.b);
        out.put_u64_le(e.t_ns);
    }
    out.put_u64_le(snap.dropped_events);
    end_frame(out);
    Ok(())
}

/// Parses a [`FrameKind::MetricsReport`] payload back into a
/// [`Snapshot`]. Total: every count is covered by input before it
/// sizes an allocation, bucket indexes must be in range and strictly
/// ascending (the canonical encoding), and unknown sample/event tags
/// are typed errors.
///
/// # Errors
///
/// [`ProtocolError::Malformed`] / [`ProtocolError::Truncated`] /
/// [`ProtocolError::TrailingBytes`] naming the first violation.
pub fn parse_metrics_report(mut payload: &[u8]) -> Result<Snapshot, ProtocolError> {
    let mut snap = Snapshot::new();
    need(&payload, 4).map_err(|_| ProtocolError::Malformed("report shorter than sample count"))?;
    let n_samples = payload.get_u32_le() as usize;
    // Minimum sample is 4 bytes (empty name, empty histogram): the
    // count is covered by input before anything is reserved.
    need(&payload, n_samples.checked_mul(4).ok_or(ProtocolError::Truncated)?)
        .map_err(|_| ProtocolError::Truncated)?;
    snap.samples.reserve(n_samples);
    for _ in 0..n_samples {
        need(&payload, 2).map_err(|_| ProtocolError::Truncated)?;
        let name_len = usize::from(payload.get_u16_le());
        need(&payload, name_len + 1).map_err(|_| ProtocolError::Truncated)?;
        let name = std::str::from_utf8(&payload[..name_len])
            .map_err(|_| ProtocolError::Malformed("metric name is not UTF-8"))?
            .to_string();
        payload.advance(name_len);
        let value = match payload.get_u8() {
            1 => {
                need(&payload, 8).map_err(|_| ProtocolError::Truncated)?;
                Value::Counter(payload.get_u64_le())
            }
            2 => {
                need(&payload, 8).map_err(|_| ProtocolError::Truncated)?;
                Value::Gauge(payload.get_u64_le())
            }
            3 => {
                need(&payload, 1).map_err(|_| ProtocolError::Truncated)?;
                let nonzero = usize::from(payload.get_u8());
                need(&payload, nonzero.checked_mul(9).ok_or(ProtocolError::Truncated)?)
                    .map_err(|_| ProtocolError::Truncated)?;
                let mut h = HistogramSnapshot::empty();
                let mut prev: Option<usize> = None;
                for _ in 0..nonzero {
                    let b = usize::from(payload.get_u8());
                    if b >= BUCKETS {
                        return Err(ProtocolError::Malformed("histogram bucket out of range"));
                    }
                    if prev.is_some_and(|p| p >= b) {
                        return Err(ProtocolError::Malformed(
                            "histogram buckets are not strictly ascending",
                        ));
                    }
                    prev = Some(b);
                    let count = payload.get_u64_le();
                    if count == 0 {
                        return Err(ProtocolError::Malformed("histogram encodes an empty bucket"));
                    }
                    h.buckets[b] = count;
                }
                Value::Histogram(h)
            }
            _ => return Err(ProtocolError::Malformed("unknown metric sample tag")),
        };
        snap.samples.push(Sample { name, value });
    }
    need(&payload, 4).map_err(|_| ProtocolError::Malformed("report shorter than event count"))?;
    let n_events = payload.get_u32_le() as usize;
    need(&payload, n_events.checked_mul(25).ok_or(ProtocolError::Truncated)?)
        .map_err(|_| ProtocolError::Truncated)?;
    snap.events.reserve(n_events);
    for _ in 0..n_events {
        let kind = TraceKind::from_tag(payload.get_u8())
            .ok_or(ProtocolError::Malformed("unknown trace event tag"))?;
        let a = payload.get_u64_le();
        let b = payload.get_u64_le();
        let t_ns = payload.get_u64_le();
        snap.events.push(TraceEvent { kind, a, b, t_ns });
    }
    need(&payload, 8).map_err(|_| ProtocolError::Malformed("report missing dropped count"))?;
    snap.dropped_events = payload.get_u64_le();
    if !payload.is_empty() {
        return Err(ProtocolError::TrailingBytes);
    }
    Ok(snap)
}

/// Parses a [`FrameKind::Pong`] payload into its nonce.
///
/// # Errors
///
/// [`ProtocolError::Malformed`] unless the payload is exactly 8 bytes.
pub fn parse_pong(mut payload: &[u8]) -> Result<u64, ProtocolError> {
    if payload.len() != 8 {
        return Err(ProtocolError::Malformed("pong payload is not exactly one u64 nonce"));
    }
    Ok(payload.get_u64_le())
}

/// Parses a [`FrameKind::Digest`] payload.
///
/// # Errors
///
/// [`ProtocolError::Malformed`] unless the payload is exactly the
/// digest's 20 bytes.
pub fn parse_digest(mut payload: &[u8]) -> Result<LibraryDigest, ProtocolError> {
    if payload.len() != 4 + 8 + 8 {
        return Err(ProtocolError::Malformed("digest payload is not exactly 20 bytes"));
    }
    Ok(LibraryDigest {
        gates: payload.get_u32_le(),
        payload_bytes: payload.get_u64_le(),
        fingerprint: payload.get_u64_le(),
    })
}

/// Parses a [`FrameKind::Error`] payload into its code and detail.
///
/// # Errors
///
/// [`ProtocolError::Malformed`] on unknown codes, short payloads or
/// non-UTF-8 detail text.
pub fn parse_error(mut payload: &[u8]) -> Result<(ErrorCode, String), ProtocolError> {
    need(&payload, 3).map_err(|_| ProtocolError::Malformed("error payload shorter than header"))?;
    let code = ErrorCode::from_tag(payload.get_u8())
        .ok_or(ProtocolError::Malformed("unknown error code"))?;
    let len = usize::from(payload.get_u16_le());
    if payload.len() != len {
        return Err(ProtocolError::Malformed("error detail length lies"));
    }
    let detail = std::str::from_utf8(payload)
        .map_err(|_| ProtocolError::Malformed("error detail is not UTF-8"))?
        .to_string();
    Ok((code, detail))
}

/// Parses a [`FrameKind::GateList`] payload into owned gate ids.
///
/// # Errors
///
/// [`ProtocolError`] on count lies, malformed gates or trailing bytes.
pub fn parse_gate_list(mut payload: &[u8]) -> Result<Vec<GateId>, ProtocolError> {
    need(&payload, 4).map_err(|_| ProtocolError::Malformed("gate list shorter than its count"))?;
    let count = payload.get_u32_le() as usize;
    // A gate id is at least 2 bytes (kind + qubit count), so the claim
    // is covered by input before it sizes the list.
    need(&payload, count.checked_mul(2).ok_or(ProtocolError::Truncated)?)
        .map_err(|_| ProtocolError::Truncated)?;
    let mut gates = Vec::with_capacity(count);
    for _ in 0..count {
        gates.push(take_gate(&mut payload)?);
    }
    if !payload.is_empty() {
        return Err(ProtocolError::TrailingBytes);
    }
    Ok(gates)
}

/// Parses a [`FrameKind::FetchMany`] payload's gate list into reused
/// slots, growing `gates` only when the batch is larger than any seen
/// before, and returning the batch size.
///
/// # Errors
///
/// [`ProtocolError`] on count lies, malformed gates or trailing bytes.
pub fn parse_fetch_many(
    payload: &mut &[u8],
    gates: &mut Vec<GateId>,
) -> Result<usize, ProtocolError> {
    need(payload, 4).map_err(|_| ProtocolError::Malformed("batch shorter than its count"))?;
    let count = payload.get_u32_le() as usize;
    need(payload, count.checked_mul(2).ok_or(ProtocolError::Truncated)?)
        .map_err(|_| ProtocolError::Truncated)?;
    for k in 0..count {
        if gates.len() <= k {
            gates.push(GateId { kind: compaqt_pulse::library::GateKind::X, qubits: Vec::new() });
        }
        take_gate_into(payload, &mut gates[k])?;
    }
    if !payload.is_empty() {
        return Err(ProtocolError::TrailingBytes);
    }
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use compaqt_pulse::library::GateKind;

    #[test]
    fn frame_round_trip_all_request_kinds() {
        let mut out = BytesMut::new();
        encode_ping(&mut out, 0xDEAD_BEEF_1234_5678);
        let (kind, payload) = parse_frame(&out, DEFAULT_MAX_FRAME_BYTES).unwrap();
        assert_eq!(kind, FrameKind::Ping);
        assert_eq!(parse_pong(payload).unwrap(), 0xDEAD_BEEF_1234_5678);

        let gate = GateId::pair(GateKind::Cx, 3, 7);
        encode_fetch_gate(&mut out, &gate).unwrap();
        let (kind, mut payload) = parse_frame(&out, DEFAULT_MAX_FRAME_BYTES).unwrap();
        assert_eq!(kind, FrameKind::FetchGate);
        assert_eq!(take_gate(&mut payload).unwrap(), gate);
        assert!(payload.is_empty());

        let batch =
            vec![GateId::single(GateKind::X, 0), GateId::single(GateKind::Custom("ccz".into()), 4)];
        encode_fetch_many(&mut out, &batch).unwrap();
        let (kind, mut payload) = parse_frame(&out, DEFAULT_MAX_FRAME_BYTES).unwrap();
        assert_eq!(kind, FrameKind::FetchMany);
        let mut slots = Vec::new();
        assert_eq!(parse_fetch_many(&mut payload, &mut slots).unwrap(), 2);
        assert_eq!(&slots[..2], &batch[..]);

        encode_list_gates(&mut out);
        assert_eq!(parse_frame(&out, 64).unwrap(), (FrameKind::ListGates, &[][..]));
        encode_library_digest(&mut out);
        assert_eq!(parse_frame(&out, 64).unwrap(), (FrameKind::LibraryDigest, &[][..]));
    }

    #[test]
    fn every_tag_round_trips_and_classifies() {
        for kind in [
            FrameKind::Ping,
            FrameKind::FetchGate,
            FrameKind::FetchMany,
            FrameKind::ListGates,
            FrameKind::LibraryDigest,
            FrameKind::Metrics,
            FrameKind::Pong,
            FrameKind::Gate,
            FrameKind::GateBatch,
            FrameKind::GateList,
            FrameKind::Digest,
            FrameKind::MetricsReport,
            FrameKind::Error,
        ] {
            assert_eq!(FrameKind::from_tag(kind.tag()), Some(kind));
            assert_eq!(kind.is_request(), kind.tag() & 0x8000 == 0, "{kind:?}");
        }
        assert_eq!(FrameKind::from_tag(0x7777), None);
    }

    #[test]
    fn framing_damage_is_typed() {
        let mut out = BytesMut::new();
        encode_ping(&mut out, 7);
        let good = out.to_vec();

        let mut bad = good.clone();
        bad[0] ^= 0xFF;
        assert_eq!(parse_frame(&bad, 1024), Err(ProtocolError::BadMagic));

        let mut bad = good.clone();
        bad[4] = 99;
        assert_eq!(parse_frame(&bad, 1024), Err(ProtocolError::VersionSkew { found: 99 }));

        let mut bad = good.clone();
        bad[6] = 0x77;
        bad[7] = 0x77;
        assert_eq!(parse_frame(&bad, 1024), Err(ProtocolError::UnknownKind(0x7777)));

        let mut bad = good.clone();
        bad[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            parse_frame(&bad, 1024),
            Err(ProtocolError::FrameTooLarge { claimed: u32::MAX, max: 1024 })
        );

        let mut bad = good.clone();
        *bad.last_mut().unwrap() ^= 1;
        assert_eq!(parse_frame(&bad, 1024), Err(ProtocolError::CrcMismatch));

        assert_eq!(parse_frame(&good[..good.len() - 1], 1024), Err(ProtocolError::Truncated));
        let mut long = good.clone();
        long.push(0);
        assert_eq!(parse_frame(&long, 1024), Err(ProtocolError::TrailingBytes));
        assert_eq!(parse_frame(&[], 1024), Err(ProtocolError::Truncated));
    }

    #[test]
    fn read_frame_streams_and_distinguishes_eof() {
        let mut out = BytesMut::new();
        encode_ping(&mut out, 41);
        let mut wire = out.to_vec();
        encode_list_gates(&mut out);
        wire.extend_from_slice(&out);

        let mut stream = &wire[..];
        let mut buf = Vec::new();
        assert_eq!(
            read_frame(&mut stream, &mut buf, 1024).unwrap(),
            FrameRead::Frame(FrameKind::Ping)
        );
        assert_eq!(
            parse_pong(&buf[FRAME_HEADER_BYTES..buf.len() - FRAME_TRAILER_BYTES]).unwrap(),
            41
        );
        assert_eq!(
            read_frame(&mut stream, &mut buf, 1024).unwrap(),
            FrameRead::Frame(FrameKind::ListGates)
        );
        assert_eq!(read_frame(&mut stream, &mut buf, 1024).unwrap(), FrameRead::Eof);

        // EOF mid-frame is truncation, not a clean close.
        let mut stream = &wire[..5];
        assert!(matches!(
            read_frame(&mut stream, &mut buf, 1024),
            Err(ReadFrameError::Protocol(ProtocolError::Truncated))
        ));
    }

    #[test]
    fn error_frames_round_trip_and_truncate_detail() {
        let mut out = BytesMut::new();
        encode_error(&mut out, ErrorCode::UnknownGate, "no such gate: X q3");
        let (kind, payload) = parse_frame(&out, 1024).unwrap();
        assert_eq!(kind, FrameKind::Error);
        let (code, detail) = parse_error(payload).unwrap();
        assert_eq!(code, ErrorCode::UnknownGate);
        assert_eq!(detail, "no such gate: X q3");

        // A multi-byte character straddling the cap is dropped whole.
        let mut long = "x".repeat(usize::from(u16::MAX) - 1);
        long.push('é');
        encode_error(&mut out, ErrorCode::Internal, &long);
        let (_, payload) = parse_frame(&out, u32::MAX).unwrap();
        let (_, detail) = parse_error(payload).unwrap();
        assert_eq!(detail.len(), usize::from(u16::MAX) - 1);

        for code in
            [ErrorCode::UnknownGate, ErrorCode::Busy, ErrorCode::Malformed, ErrorCode::Internal]
        {
            assert_eq!(ErrorCode::from_tag(code.tag()), Some(code));
        }
        assert_eq!(ErrorCode::from_tag(0), None);
    }

    #[test]
    fn metrics_report_round_trips_and_is_canonical() {
        let mut snap = Snapshot::new();
        snap.push_counter("requests", 41);
        snap.push_gauge("connections", 3);
        let hist = compaqt_obs::Histogram::new();
        for v in [0, 1, 90, 90, 4000] {
            hist.record(v);
        }
        snap.push_histogram("lat_ns", hist.snapshot());
        snap.events.push(TraceEvent { kind: TraceKind::SlowRequest, a: 2, b: 9000, t_ns: 77 });
        snap.dropped_events = 5;

        let mut out = BytesMut::new();
        encode_metrics_report(&mut out, &snap).unwrap();
        let (kind, payload) = parse_frame(&out, DEFAULT_MAX_FRAME_BYTES).unwrap();
        assert_eq!(kind, FrameKind::MetricsReport);
        let back = parse_metrics_report(payload).unwrap();
        assert_eq!(back.samples, snap.samples);
        assert_eq!(back.events, snap.events);
        assert_eq!(back.dropped_events, 5);

        // Canonical: re-encoding the parsed snapshot is bit-identical.
        let mut again = BytesMut::new();
        encode_metrics_report(&mut again, &back).unwrap();
        assert_eq!(&out[..], &again[..]);

        // The empty request frame pairs with it.
        encode_metrics(&mut out);
        assert_eq!(parse_frame(&out, 64).unwrap(), (FrameKind::Metrics, &[][..]));
    }

    #[test]
    fn hostile_metrics_reports_are_typed_errors() {
        // An empty snapshot still carries its three section footers.
        let mut out = BytesMut::new();
        encode_metrics_report(&mut out, &Snapshot::new()).unwrap();
        let (_, payload) = parse_frame(&out, 1024).unwrap();
        assert_eq!(parse_metrics_report(payload).unwrap(), Snapshot::new());

        // Lying sample count: covered-by-input before allocation.
        let mut lying = Snapshot::new();
        let mut raw = BytesMut::new();
        encode_metrics_report(&mut raw, &lying).unwrap();
        let mut bytes = raw[FRAME_HEADER_BYTES..raw.len() - FRAME_TRAILER_BYTES].to_vec();
        bytes[..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(parse_metrics_report(&bytes), Err(ProtocolError::Truncated));

        // Out-of-range bucket index.
        lying.push_histogram("h", HistogramSnapshot::empty());
        let mut raw = BytesMut::new();
        encode_metrics_report(&mut raw, &lying).unwrap();
        let mut bytes = raw[FRAME_HEADER_BYTES..raw.len() - FRAME_TRAILER_BYTES].to_vec();
        // sample: count(4) name_len(2) "h"(1) tag(1) -> nonzero at 8
        bytes[8] = 1;
        bytes.splice(9..9, [200u8, 1, 0, 0, 0, 0, 0, 0, 0]);
        assert_eq!(
            parse_metrics_report(&bytes),
            Err(ProtocolError::Malformed("histogram bucket out of range"))
        );

        // Unknown trace tag.
        let mut evs = Snapshot::new();
        evs.events.push(TraceEvent { kind: TraceKind::ConnOpen, a: 0, b: 0, t_ns: 0 });
        let mut raw = BytesMut::new();
        encode_metrics_report(&mut raw, &evs).unwrap();
        let mut bytes = raw[FRAME_HEADER_BYTES..raw.len() - FRAME_TRAILER_BYTES].to_vec();
        bytes[8] = 0xEE; // the event's kind byte (after two u32 counts)
        assert_eq!(
            parse_metrics_report(&bytes),
            Err(ProtocolError::Malformed("unknown trace event tag"))
        );

        // Trailing bytes after the dropped count.
        let mut raw = BytesMut::new();
        encode_metrics_report(&mut raw, &Snapshot::new()).unwrap();
        let mut bytes = raw[FRAME_HEADER_BYTES..raw.len() - FRAME_TRAILER_BYTES].to_vec();
        bytes.push(0);
        assert_eq!(parse_metrics_report(&bytes), Err(ProtocolError::TrailingBytes));
    }

    #[test]
    fn gate_list_round_trips() {
        let gates = vec![
            GateId::single(GateKind::X, 0),
            GateId::single(GateKind::Sx, 1),
            GateId::pair(GateKind::Cx, 0, 1),
        ];
        let mut out = BytesMut::new();
        begin_frame(&mut out, FrameKind::GateList);
        out.put_u32_le(gates.len() as u32);
        for g in &gates {
            put_gate(&mut out, g).unwrap();
        }
        end_frame(&mut out);
        let (kind, payload) = parse_frame(&out, 1024).unwrap();
        assert_eq!(kind, FrameKind::GateList);
        assert_eq!(parse_gate_list(payload).unwrap(), gates);

        // A lying count is covered-by-input checked before allocation.
        let mut lying = BytesMut::new();
        begin_frame(&mut lying, FrameKind::GateList);
        lying.put_u32_le(u32::MAX);
        end_frame(&mut lying);
        let (_, payload) = parse_frame(&lying, 1024).unwrap();
        assert_eq!(parse_gate_list(payload), Err(ProtocolError::Truncated));
    }
}
