//! # compaqt-io
//!
//! The persistence and wire layer: a versioned, checksummed,
//! little-endian binary container ("CWL" — Compressed Waveform Library)
//! for whole compressed pulse libraries.
//!
//! The paper's deployment model ends with the host shipping the
//! compressed library into controller memory (Figure 6). The in-process
//! side of that flow lives in `compaqt-core` ([`Store`](compaqt_core::store::Store) serves
//! single-gate fetches; `bitstream` emits a flat record-stream memory
//! image). This crate adds the missing piece for *distribution*: a
//! random-access container a serving process can load mmap-style — one
//! backing buffer, a validated per-gate index, payload bytes borrowed
//! (never copied) until the moment they are decoded.
//!
//! # On-disk layout (little endian)
//!
//! ```text
//! file    := header index payload
//! header  := magic:u32 version:u16 reserved:u16 rate_bits:u64
//!            count:u32 index_bytes:u64 payload_bytes:u64 index_crc:u32
//! index   := entry*count                (strictly ascending by gate)
//! entry   := gate codec:u8 vtag:u8 ws:u16 offset:u64 len:u32 crc32:u32
//! gate    := kind:u8 [name_len:u16 name:utf8] nq:u8 qubit:u16*nq
//! payload := one byte range per entry, contiguous from offset 0,
//!            in index order
//! ```
//!
//! `rate_bits` is the f64 bit pattern of the library-wide DAC sample
//! rate (0 when entries mix rates). Each payload carries one compressed
//! stream — a plain
//! [`CompressedWaveform`](compaqt_core::compress::CompressedWaveform), an
//! [`OverlapCompressed`](compaqt_core::overlap::OverlapCompressed)
//! lapped stream, or an
//! [`AdaptiveCompressed`](compaqt_core::adaptive::AdaptiveCompressed)
//! segment list — in the same channel encoding the controller memory
//! image uses, with its CRC-32 recorded in the index.
//!
//! # The validate-then-borrow contract
//!
//! [`Reader::open`] accepts any [`ContainerSource`] — owned bytes, a
//! caller-borrowed region, or a read-only memory map of a container
//! file — and validates the *entire* index before any payload is
//! parsed: magic, version, section sizes, the header's CRC-32 over the
//! index bytes (so a flipped bit in a gate field can never silently
//! remap a waveform to the wrong qubit), strict gate ordering (which
//! also proves uniqueness), offset contiguity (which also proves
//! bounds and non-overlap), and decodability of every declared
//! variant. Per-entry payload CRC-32 verification is eager by default
//! ([`ValidationMode::Eager`], the historical [`Reader::new`]
//! behaviour) or deferred to first touch with a cached per-entry
//! verdict ([`ValidationMode::LazyCrc`]), which makes opening a
//! larger-than-RAM mapped library O(index) instead of O(payload). A
//! container that survives construction can then
//! hand out zero-copy payload views ([`Entry::payload`]) and decode
//! straight through a pooled
//! [`DecodeScratch`](compaqt_core::engine::DecodeScratch)
//! ([`Reader::fetch_into`]), or bulk-load a serving
//! [`Store`](compaqt_core::store::Store) ([`Reader::into_store`] / [`FromContainer::from_reader`])
//! whose steady-state `fetch_into` performs zero heap allocations.
//! Hostile bytes — truncations, length lies, overlapping offsets, CRC
//! damage, version skew — come back as typed [`ContainerError`]s, never
//! as a panic and never as an allocation sized from a lying claim.
//!
//! # Example
//!
//! ```
//! use compaqt_core::compress::{Compressor, Variant};
//! use compaqt_core::store::StoreConfig;
//! use compaqt_io::{write_library, Reader};
//! use compaqt_pulse::device::Device;
//! use compaqt_pulse::vendor::Vendor;
//!
//! let lib = Device::synthesize(Vendor::Ibm, 2, 0xCA1).pulse_library();
//! let compressor = Compressor::new(Variant::IntDctW { ws: 16 });
//!
//! // Host side: serialize the compressed library to container bytes.
//! let bytes = write_library(&lib, &compressor)?;
//!
//! // Controller side: validate once, then serve with zero copies.
//! let reader = Reader::new(bytes)?;
//! assert_eq!(reader.len(), lib.len());
//! let store = reader.into_store(StoreConfig::default())?;
//! let (gate, wf) = lib.iter().next().unwrap();
//! let (mut i, mut q) = (Vec::new(), Vec::new());
//! store.fetch_into(gate, &mut i, &mut q)?;
//! assert_eq!(i.len(), wf.len());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod crc32;
pub mod fetch;
mod format;
pub mod reader;
pub mod scenario;
pub mod serve;
pub mod source;
pub mod wire;
pub mod writer;

pub use fetch::{FetchError, FetchSource};
pub use format::PayloadKind;
pub use reader::{ContainerScratch, Entry, FromContainer, Reader, StreamPayload};
pub use scenario::{run_device, run_fleet, ScenarioError, ScenarioRow, ScenarioVariant};
pub use serve::{
    serve, serve_source, serve_with, Client, ClientConfig, Responder, ServeConfig, ServeError,
    ServeObs, ServeStats, ServerHandle,
};
pub use source::{ContainerSource, ReaderOptions, ValidationMode};
pub use wire::{ErrorCode, FrameKind, LibraryDigest, ProtocolError};
pub use writer::{write_library, write_report, write_store, Writer};

use compaqt_core::CompressError;
use compaqt_pulse::library::GateId;
use std::fmt;

/// Magic number opening every CWL container (`"CWL\0"` little-endian).
pub const MAGIC: u32 = u32::from_le_bytes(*b"CWL\0");

/// Container format version this crate writes and accepts.
pub const VERSION: u16 = 1;

/// Errors from writing, validating or serving a container.
#[derive(Debug, Clone, PartialEq)]
pub enum ContainerError {
    /// The buffer does not open with the CWL magic number.
    BadMagic,
    /// The container was written by an incompatible format version.
    VersionSkew {
        /// The version recorded in the header.
        found: u16,
    },
    /// The buffer ends before the structure it declares.
    Truncated,
    /// The index lies about its own structure (section sizes, sort
    /// order, offset layout, field values).
    IndexInvalid(&'static str),
    /// The index bytes do not match the header's index CRC-32 — a
    /// damaged index could otherwise still validate structurally and
    /// silently remap payloads to the wrong gates.
    IndexCrcMismatch,
    /// An entry's payload bytes do not match the CRC-32 its index
    /// records.
    CrcMismatch {
        /// The gate whose payload is damaged.
        gate: GateId,
    },
    /// A payload's own encoding is malformed (even though its CRC
    /// matched — i.e. the container was *written* wrong or forged
    /// consistently).
    PayloadInvalid(&'static str),
    /// The container holds no entry for the requested gate.
    UnknownGate(GateId),
    /// The entry exists but its payload kind cannot be served through
    /// the store path (lapped and adaptive streams have no
    /// [`Store`](compaqt_core::store::Store) decoder; read them via [`Entry::read`]).
    Unservable {
        /// The gate whose entry is not a plain stream.
        gate: GateId,
    },
    /// Two entries were added for the same gate.
    DuplicateGate(GateId),
    /// A gate or waveform field exceeds what the format can record
    /// (name beyond `u16` bytes, more than 255 qubits).
    Unrepresentable(&'static str),
    /// The codec layer rejected a stream (undecodable variant at load,
    /// malformed coefficient stream at decode).
    Codec(CompressError),
}

impl fmt::Display for ContainerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ContainerError::BadMagic => write!(f, "not a CWL container"),
            ContainerError::VersionSkew { found } => {
                write!(f, "container version {found} is not the supported version {VERSION}")
            }
            ContainerError::Truncated => write!(f, "container truncated"),
            ContainerError::IndexInvalid(reason) => write!(f, "invalid container index: {reason}"),
            ContainerError::IndexCrcMismatch => {
                write!(f, "index checksum mismatch (damaged or forged index section)")
            }
            ContainerError::CrcMismatch { gate } => {
                write!(f, "payload checksum mismatch for gate {gate}")
            }
            ContainerError::PayloadInvalid(reason) => {
                write!(f, "malformed container payload: {reason}")
            }
            ContainerError::UnknownGate(gate) => {
                write!(f, "container holds no entry for gate {gate}")
            }
            ContainerError::Unservable { gate } => {
                write!(f, "entry for gate {gate} is not a plain stream the store can serve")
            }
            ContainerError::DuplicateGate(gate) => {
                write!(f, "two entries were added for gate {gate}")
            }
            ContainerError::Unrepresentable(what) => {
                write!(f, "field exceeds the container format: {what}")
            }
            ContainerError::Codec(e) => write!(f, "codec rejected a contained stream: {e}"),
        }
    }
}

impl std::error::Error for ContainerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ContainerError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CompressError> for ContainerError {
    fn from(e: CompressError) -> Self {
        ContainerError::Codec(e)
    }
}
