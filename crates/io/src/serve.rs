//! `compaqt-serve`: a waveform service daemon and its blocking client.
//!
//! The deployment tier between a CWL container on disk and a fleet of
//! controllers: any [`FetchSource`] — a decoded [`Store`], or a
//! [`Reader`](crate::Reader) serving straight from container bytes
//! (including a lazily-validated memory map of a larger-than-RAM
//! library, via [`serve_source`]) — is shared behind a TCP listener,
//! and many concurrent controller clients fetch gates over the
//! [`crate::wire`] protocol. Waveforms travel **compressed** (the
//! paper's model: the controller decompresses locally), so the
//! server's per-request work is a lookup and a straight serialization
//! of the stored stream — no decode, no clone; for a reader-backed
//! source the payload bytes *are* the wire bytes, so serving is
//! zero-parse as well.
//!
//! # Architecture
//!
//! No async runtime is available offline, so the transport is
//! deliberately boring: `std::net::TcpListener`, one blocking thread
//! per connection, explicit read/write timeouts, and a connection cap
//! with graceful [`ErrorCode::Busy`] rejection. The protocol is the
//! contract — [`Responder`] is a pure request→response state machine
//! with no transport inside it, so an async transport can replace the
//! thread-per-connection loop later without touching the wire format
//! (and the `alloc_regression` suite drives [`Responder`] directly to
//! pin the fetch path's zero-steady-state-allocation guarantee).
//!
//! Per connection, the server keeps one reusable read buffer, one
//! reusable response buffer and reusable gate-id slots: after warm-up,
//! serving `FetchGate` / `FetchMany` / `Ping` performs **zero heap
//! allocations** end to end, mirroring the `_into` convention
//! everywhere else in the workspace.
//!
//! Hostile bytes — bit flips, truncations, length lies, CRC damage,
//! oversized claims — come back as typed [`ProtocolError`]s: the
//! connection reports best-effort and closes, the server thread
//! survives to serve the next client, and nothing panics and nothing
//! allocates from a lying length field.
//!
//! # Example
//!
//! ```
//! use compaqt_core::compress::{Compressor, Variant};
//! use compaqt_core::store::Store;
//! use compaqt_io::serve::{serve, Client};
//! use compaqt_pulse::device::Device;
//! use compaqt_pulse::vendor::Vendor;
//! use std::sync::Arc;
//!
//! let lib = Device::synthesize(Vendor::Ibm, 2, 0x5E21E).pulse_library();
//! let compressor = Compressor::new(Variant::IntDctW { ws: 16 });
//! let store = Arc::new(Store::from_library(&lib, &compressor)?);
//!
//! let handle = serve(Arc::clone(&store), "127.0.0.1:0")?;
//! let mut client = Client::connect(handle.local_addr())?;
//! client.ping()?;
//! let (gate, wf) = lib.iter().next().unwrap();
//! let (mut i, mut q) = (Vec::new(), Vec::new());
//! client.fetch_into(gate, &mut i, &mut q)?;
//! assert_eq!(i.len(), wf.len());
//! drop(client);
//! handle.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::fetch::{FetchError, FetchSource};
use crate::format::{checked_u32, put_gate, take_gate_into, take_plain_into, SlotSpares};
use crate::wire::{
    begin_frame, encode_error, encode_fetch_gate, encode_fetch_many, encode_library_digest,
    encode_list_gates, encode_metrics, encode_metrics_report, encode_ping, end_frame, fnv1a64,
    parse_digest, parse_error, parse_fetch_many, parse_frame, parse_gate_list,
    parse_metrics_report, ErrorCode, FrameKind, FrameRead, LibraryDigest, ProtocolError,
    ReadFrameError, DEFAULT_MAX_FRAME_BYTES, FRAME_HEADER_BYTES, FRAME_TRAILER_BYTES,
};
use bytes::{Buf, BufMut, BytesMut};
use compaqt_core::compress::{CompressedWaveform, Variant};
use compaqt_core::engine::{DecodeScratch, DecompressionEngine, EngineStats};
use compaqt_core::store::Store;
use compaqt_core::CompressError;
use compaqt_obs::{Collect, Gauge, Histogram, Snapshot, TraceKind, TraceRing};
use compaqt_pulse::library::{GateId, GateKind};
use std::fmt;
use std::io::Write;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Sizing and safety knobs for a server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Concurrent connections served before new ones are rejected with
    /// a graceful [`ErrorCode::Busy`] frame.
    pub max_connections: usize,
    /// Per-connection read timeout (zero = wait forever). An idle or
    /// stalled client is disconnected when it fires, freeing its slot.
    pub read_timeout: Duration,
    /// Per-connection write timeout (zero = wait forever); bounds how
    /// long a slow-draining client can pin a server thread.
    pub write_timeout: Duration,
    /// Cap on accepted request payload sizes; a frame claiming more is
    /// rejected before any payload byte is buffered.
    pub max_frame_bytes: u32,
    /// Requests slower than this (handle + response write) are pushed
    /// to the trace ring as [`TraceKind::SlowRequest`] events. Zero
    /// (the default) disables slow-request tracing; per-kind latency
    /// histograms are recorded regardless.
    pub slow_request: Duration,
    /// Capacity of the server's trace ring (rounded up to a power of
    /// two, minimum 2): the last N connection/rejection/slow-request
    /// events kept for scraping, oldest dropped first.
    pub trace_events: usize,
}

impl Default for ServeConfig {
    /// 64 connections, 30 s read / 10 s write timeouts, 8 MiB frames,
    /// slow-request tracing off, 256 trace events.
    fn default() -> Self {
        ServeConfig {
            max_connections: 64,
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(10),
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            slow_request: Duration::ZERO,
            trace_events: 256,
        }
    }
}

/// A point-in-time snapshot of a server's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Connections accepted into service.
    pub connections_accepted: u64,
    /// Connections rejected at the cap with a Busy frame.
    pub connections_rejected_busy: u64,
    /// Well-formed requests answered (any kind, including app-level
    /// error responses).
    pub requests_served: u64,
    /// Waveform streams served (one per `FetchGate`, one per gate of a
    /// `FetchMany` — the same per-gate accounting the store's
    /// [`StoreStats`](compaqt_core::store::StoreStats) uses).
    pub fetches_served: u64,
    /// Frames rejected as hostile or damaged ([`ProtocolError`]s).
    pub protocol_errors: u64,
    /// Connections dropped by a read/write timeout firing (the
    /// transport reported `TimedOut` / `WouldBlock`; other I/O failures
    /// — resets, broken pipes — are not timeouts and are not counted).
    pub timeouts: u64,
}

/// Shared atomic counters behind [`ServeStats`].
#[derive(Debug, Default)]
struct ServeCounters {
    accepted: AtomicU64,
    busy_rejected: AtomicU64,
    requests: AtomicU64,
    fetches: AtomicU64,
    protocol_errors: AtomicU64,
    timeouts: AtomicU64,
}

impl ServeCounters {
    fn snapshot(&self) -> ServeStats {
        ServeStats {
            connections_accepted: self.accepted.load(Ordering::Relaxed),
            connections_rejected_busy: self.busy_rejected.load(Ordering::Relaxed),
            requests_served: self.requests.load(Ordering::Relaxed),
            fetches_served: self.fetches.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
        }
    }
}

/// The serve tier's shared telemetry hub: the [`ServeStats`] counters,
/// a live-connection gauge, one log2 latency histogram per request
/// kind (handle + response write, recorded by the connection loop) and
/// the trace ring carrying connection, rejection, slow-request and
/// protocol-error events — plus whatever events the served source
/// pushes, since [`serve_source`] attaches this ring to the source.
///
/// One `Arc<ServeObs>` is shared by the accept loop, every connection
/// thread and the [`Responder`] (which renders it into
/// [`FrameKind::Metrics`] responses). Recording is relaxed-atomic and
/// allocation-free; reading happens only when scraped.
#[derive(Debug)]
pub struct ServeObs {
    counters: ServeCounters,
    connections: Gauge,
    request_ns: [Histogram; REQUEST_KINDS.len()],
    ring: Arc<TraceRing>,
    slow_ns: u64,
}

/// Request kinds with a per-kind latency histogram, index-aligned with
/// [`ServeObs::request_ns`] and the exposition names below.
const REQUEST_KINDS: [FrameKind; 6] = [
    FrameKind::Ping,
    FrameKind::FetchGate,
    FrameKind::FetchMany,
    FrameKind::ListGates,
    FrameKind::LibraryDigest,
    FrameKind::Metrics,
];

/// Exposition names for [`REQUEST_KINDS`], same order.
const REQUEST_HIST_NAMES: [&str; 6] = [
    "serve_ping_ns",
    "serve_fetch_gate_ns",
    "serve_fetch_many_ns",
    "serve_list_gates_ns",
    "serve_library_digest_ns",
    "serve_metrics_ns",
];

impl ServeObs {
    /// A fresh hub sized by `config` (`trace_events` ring slots,
    /// `slow_request` threshold).
    pub fn new(config: &ServeConfig) -> Self {
        ServeObs {
            counters: ServeCounters::default(),
            connections: Gauge::new(),
            request_ns: [(); REQUEST_KINDS.len()].map(|()| Histogram::new()),
            ring: Arc::new(TraceRing::new(config.trace_events)),
            slow_ns: u64::try_from(config.slow_request.as_nanos()).unwrap_or(u64::MAX),
        }
    }

    /// The trace ring (shared with the served source by
    /// [`serve_source`]).
    pub fn ring(&self) -> &Arc<TraceRing> {
        &self.ring
    }

    /// Connections currently in service.
    pub fn connections(&self) -> u64 {
        self.connections.get()
    }

    /// Records one served request's wall time and, past the configured
    /// threshold, a [`TraceKind::SlowRequest`] event (`a` = the request
    /// kind's wire tag, `b` = elapsed ns). The serve loop calls this
    /// per request; custom transport loops feeding the same hub call it
    /// themselves. Relaxed-atomic, allocation-free.
    pub fn record_request(&self, kind: FrameKind, elapsed_ns: u64) {
        if let Some(k) = REQUEST_KINDS.iter().position(|&r| r == kind) {
            self.request_ns[k].record(elapsed_ns);
        }
        if self.slow_ns > 0 && elapsed_ns >= self.slow_ns {
            self.ring.push(TraceKind::SlowRequest, u64::from(kind.tag()), elapsed_ns);
        }
    }

    /// Contributes the serve tier's counters, connection gauge,
    /// per-kind latency histograms and ring events to a snapshot. Cold
    /// path; also available through the [`Collect`] trait.
    pub fn collect_obs(&self, out: &mut Snapshot) {
        let s = self.counters.snapshot();
        out.push_counter("serve_connections_accepted", s.connections_accepted);
        out.push_counter("serve_busy_rejections", s.connections_rejected_busy);
        out.push_counter("serve_requests", s.requests_served);
        out.push_counter("serve_fetches", s.fetches_served);
        out.push_counter("serve_protocol_errors", s.protocol_errors);
        out.push_counter("serve_timeouts", s.timeouts);
        out.push_gauge("serve_connections", self.connections.get());
        for (name, hist) in REQUEST_HIST_NAMES.iter().zip(&self.request_ns) {
            out.push_histogram(*name, hist.snapshot());
        }
        self.ring.snapshot_into(&mut out.events);
        out.dropped_events = self.ring.dropped();
    }
}

impl Collect for ServeObs {
    fn collect(&self, out: &mut Snapshot) {
        self.collect_obs(out);
    }
}

/// Errors from the client side of a serve conversation.
#[derive(Debug)]
pub enum ServeError {
    /// The transport failed (connect, timeout, reset).
    Io(std::io::Error),
    /// The peer violated the wire protocol.
    Protocol(ProtocolError),
    /// The server answered with a typed error response.
    Remote {
        /// The failure class the server reported.
        code: ErrorCode,
        /// The server's human-readable detail (possibly empty).
        detail: String,
    },
    /// A served stream failed to decode locally.
    Codec(CompressError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "serve transport failed: {e}"),
            ServeError::Protocol(e) => write!(f, "wire protocol violation: {e}"),
            ServeError::Remote { code, detail } if detail.is_empty() => {
                write!(f, "server rejected the request: {code}")
            }
            ServeError::Remote { code, detail } => {
                write!(f, "server rejected the request: {code} ({detail})")
            }
            ServeError::Codec(e) => write!(f, "served stream failed to decode: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            ServeError::Protocol(e) => Some(e),
            ServeError::Codec(e) => Some(e),
            ServeError::Remote { .. } => None,
        }
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<ProtocolError> for ServeError {
    fn from(e: ProtocolError) -> Self {
        ServeError::Protocol(e)
    }
}

impl From<ReadFrameError> for ServeError {
    fn from(e: ReadFrameError) -> Self {
        match e {
            ReadFrameError::Io(e) => ServeError::Io(e),
            ReadFrameError::Protocol(e) => ServeError::Protocol(e),
        }
    }
}

// ---------------------------------------------------------- responder

/// The transport-free request→response state machine: one per
/// connection, owning every reusable buffer the response path needs.
///
/// Feeding a validated frame to [`Responder::respond`] (or a
/// pre-parsed kind/payload to [`Responder::handle`]) yields either the
/// encoded response frame to write back, or a [`ProtocolError`] after
/// which the transport should report best-effort (via
/// [`Responder::error_frame`]) and close. In steady state — repeated
/// `Ping` / `FetchGate` / same-shape `FetchMany` — a responder
/// performs **zero heap allocations** per request.
#[derive(Debug)]
pub struct Responder {
    /// Response frame under construction (reused).
    out: BytesMut,
    /// Reused single-gate parse slot.
    gate: GateId,
    /// Reused batch parse slots (grows to the largest batch seen).
    gates: Vec<GateId>,
    /// Reused digest entry-encode buffer.
    digest_buf: BytesMut,
    /// Streams encoded into responses so far (per-gate granularity).
    fetches: u64,
    max_frame_bytes: u32,
    /// Serve-tier telemetry rendered into `Metrics` responses; absent
    /// for standalone responders, whose reports carry source-only data.
    obs: Option<Arc<ServeObs>>,
}

impl Responder {
    /// A fresh responder honoring `config`'s frame cap.
    pub fn new(config: &ServeConfig) -> Self {
        Responder {
            out: BytesMut::new(),
            gate: GateId { kind: GateKind::X, qubits: Vec::new() },
            gates: Vec::new(),
            digest_buf: BytesMut::new(),
            fetches: 0,
            max_frame_bytes: config.max_frame_bytes,
            obs: None,
        }
    }

    /// Includes a serve tier's telemetry (counters, connection gauge,
    /// request histograms, trace events) in this responder's `Metrics`
    /// reports, alongside whatever the source contributes. The serve
    /// loop attaches its shared [`ServeObs`]; a standalone responder
    /// reports source telemetry only.
    pub fn attach_obs(&mut self, obs: Arc<ServeObs>) {
        self.obs = Some(obs);
    }

    /// Waveform streams encoded into responses so far — one per
    /// `FetchGate`, one per gate of a `FetchMany` batch.
    pub fn fetches_encoded(&self) -> u64 {
        self.fetches
    }

    /// Validates a complete request frame and produces the response
    /// frame. The `source` is any [`FetchSource`] — a [`Store`] or a
    /// [`Reader`](crate::Reader); existing `&Store` callers compile
    /// unchanged.
    ///
    /// # Errors
    ///
    /// Any [`ProtocolError`]: the frame (or its payload) cannot be
    /// trusted and the connection should close after a best-effort
    /// [`Responder::error_frame`].
    pub fn respond<S: FetchSource + ?Sized>(
        &mut self,
        source: &S,
        frame: &[u8],
    ) -> Result<&[u8], ProtocolError> {
        let (kind, payload) = parse_frame(frame, self.max_frame_bytes)?;
        // Lifetime juggling: `payload` borrows `frame`, not `self`, so
        // handing both to `handle` is fine.
        self.handle_inner(source, kind, payload)
    }

    /// Produces the response frame for an already-validated frame kind
    /// and payload (the transport loop path, where
    /// [`crate::wire::read_frame`] did the framing checks).
    ///
    /// # Errors
    ///
    /// Any [`ProtocolError`] in the payload; close after reporting.
    pub fn handle<S: FetchSource + ?Sized>(
        &mut self,
        source: &S,
        kind: FrameKind,
        payload: &[u8],
    ) -> Result<&[u8], ProtocolError> {
        self.handle_inner(source, kind, payload)
    }

    fn handle_inner<S: FetchSource + ?Sized>(
        &mut self,
        source: &S,
        kind: FrameKind,
        payload: &[u8],
    ) -> Result<&[u8], ProtocolError> {
        match kind {
            FrameKind::Ping => {
                if payload.len() != 8 {
                    return Err(ProtocolError::Malformed("ping payload is not one u64 nonce"));
                }
                let nonce = u64::from_le_bytes(payload.try_into().expect("length checked"));
                begin_frame(&mut self.out, FrameKind::Pong);
                self.out.put_u64_le(nonce);
                end_frame(&mut self.out);
                Ok(&self.out)
            }
            FrameKind::FetchGate => {
                let Responder { out, gate, fetches, .. } = self;
                let mut p = payload;
                take_gate_into(&mut p, gate)?;
                if !p.is_empty() {
                    return Err(ProtocolError::TrailingBytes);
                }
                begin_frame(out, FrameKind::Gate);
                match source.put_stream(gate, out) {
                    Ok(()) => {
                        end_frame(out);
                        *fetches += 1;
                        Ok(&*out)
                    }
                    Err(e) => {
                        encode_fetch_failure(out, &e, "no waveform for that gate");
                        Ok(&*out)
                    }
                }
            }
            FrameKind::FetchMany => {
                let Responder { out, gates, fetches, .. } = self;
                let mut p = payload;
                let count = parse_fetch_many(&mut p, gates)?;
                begin_frame(out, FrameKind::GateBatch);
                out.put_u32_le(count as u32);
                for gate in &gates[..count] {
                    match source.put_stream(gate, out) {
                        Ok(()) => *fetches += 1,
                        Err(e) => {
                            // All-or-nothing: a batch naming an absent
                            // (or damaged) gate gets one typed error,
                            // not a partial body the client must
                            // detect.
                            encode_fetch_failure(out, &e, "batch names an absent gate");
                            return Ok(&*out);
                        }
                    }
                }
                end_frame(out);
                Ok(&*out)
            }
            FrameKind::ListGates => {
                if !payload.is_empty() {
                    return Err(ProtocolError::Malformed("list request carries a payload"));
                }
                let ids = source.gate_list();
                let Responder { out, .. } = self;
                begin_frame(out, FrameKind::GateList);
                let count = match checked_u32(ids.len(), "more than 2^32 gates") {
                    Ok(count) => count,
                    Err(_) => {
                        encode_error(out, ErrorCode::Internal, "library exceeds the wire format");
                        return Ok(&*out);
                    }
                };
                out.put_u32_le(count);
                for id in &ids {
                    if put_gate(out, id).is_err() {
                        encode_error(out, ErrorCode::Internal, "gate id exceeds the wire format");
                        return Ok(&*out);
                    }
                }
                end_frame(out);
                Ok(&*out)
            }
            FrameKind::LibraryDigest => {
                if !payload.is_empty() {
                    return Err(ProtocolError::Malformed("digest request carries a payload"));
                }
                let ids = source.gate_list();
                let Responder { out, digest_buf, .. } = self;
                let mut count = 0u64;
                let mut payload_bytes = 0u64;
                let mut fingerprint = 0u64;
                let mut broken = false;
                // Per-entry digest bytes are the gate's wire encoding
                // followed by its wire stream; the fingerprint is an
                // order-independent wrapping sum, so a store and a
                // reader over the same library digest identically.
                for gate in &ids {
                    digest_buf.clear();
                    if put_gate(digest_buf, gate).is_err() {
                        broken = true;
                        break;
                    }
                    let gate_bytes = digest_buf.len() as u64;
                    if source.put_stream(gate, digest_buf).is_err() {
                        broken = true;
                        break;
                    }
                    payload_bytes += digest_buf.len() as u64 - gate_bytes;
                    fingerprint = fingerprint.wrapping_add(fnv1a64(digest_buf));
                    count += 1;
                }
                let gates = u32::try_from(count).ok().filter(|_| !broken);
                match gates {
                    Some(gates) => {
                        begin_frame(out, FrameKind::Digest);
                        out.put_u32_le(gates);
                        out.put_u64_le(payload_bytes);
                        out.put_u64_le(fingerprint);
                        end_frame(out);
                    }
                    None => {
                        encode_error(out, ErrorCode::Internal, "library exceeds the wire format")
                    }
                }
                Ok(&*out)
            }
            FrameKind::Metrics => {
                if !payload.is_empty() {
                    return Err(ProtocolError::Malformed("metrics request carries a payload"));
                }
                // Cold scrape path: building and encoding the snapshot
                // allocates freely; nothing here runs per fetch.
                let mut snap = Snapshot::new();
                source.collect_obs(&mut snap);
                if let Some(obs) = &self.obs {
                    obs.collect_obs(&mut snap);
                }
                let Responder { out, .. } = self;
                match encode_metrics_report(out, &snap) {
                    Ok(()) => Ok(&*out),
                    Err(_) => {
                        encode_error(out, ErrorCode::Internal, "snapshot exceeds the wire format");
                        Ok(&*out)
                    }
                }
            }
            // A response kind arriving as a request is a confused or
            // hostile peer; the framing can't be trusted.
            _ => Err(ProtocolError::UnexpectedKind(kind.tag())),
        }
    }

    /// Encodes a best-effort error frame (for the transport to write
    /// before closing on a [`ProtocolError`]).
    pub fn error_frame(&mut self, code: ErrorCode, detail: &str) -> &[u8] {
        encode_error(&mut self.out, code, detail);
        &self.out
    }
}

/// Maps a source fetch failure onto a wire error frame (restarting
/// `out`, which may hold a half-built response). An unknown gate is
/// the one client-actionable code and carries the call site's detail;
/// everything else is a server-side defect reported as `Internal`.
fn encode_fetch_failure(out: &mut BytesMut, e: &FetchError, unknown_detail: &str) {
    match e {
        FetchError::UnknownGate(_) => encode_error(out, ErrorCode::UnknownGate, unknown_detail),
        FetchError::Unservable(_) => {
            encode_error(out, ErrorCode::Internal, "entry is not a plain servable stream")
        }
        FetchError::Crc(_) => {
            encode_error(out, ErrorCode::Internal, "stored payload failed its checksum")
        }
        FetchError::Codec(_) => encode_error(out, ErrorCode::Internal, "stored stream failed"),
        FetchError::Malformed(_) => {
            encode_error(out, ErrorCode::Internal, "stored stream is unencodable")
        }
    }
}

// ------------------------------------------------------------- server

/// A running server: the handle owning its accept thread.
///
/// Dropping the handle shuts the server down (idempotently); call
/// [`ServerHandle::shutdown`] to do it explicitly. In-flight
/// connections drain on their own — they end when their client
/// disconnects or their read timeout fires.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    obs: Arc<ServeObs>,
    accept: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server is listening on (with the OS-assigned
    /// port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A snapshot of the server's counters.
    pub fn stats(&self) -> ServeStats {
        self.obs.counters.snapshot()
    }

    /// The server's telemetry hub — the same [`ServeObs`] its
    /// connection threads record into and its `Metrics` responses
    /// render, for in-process inspection without a wire round trip.
    pub fn obs(&self) -> &Arc<ServeObs> {
        &self.obs
    }

    /// Stops accepting connections and joins the accept thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        let Some(accept) = self.accept.take() else { return };
        self.shutdown.store(true, Ordering::Release);
        // Poke the blocking accept() awake so it observes the flag.
        let _ = TcpStream::connect(self.addr);
        let _ = accept.join();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Binds and starts a server over `store` with [`ServeConfig`]
/// defaults. Bind to port 0 for an OS-assigned port
/// ([`ServerHandle::local_addr`] reports it).
///
/// # Errors
///
/// Any bind failure.
pub fn serve(store: Arc<Store>, addr: impl ToSocketAddrs) -> std::io::Result<ServerHandle> {
    serve_source(store, addr, ServeConfig::default())
}

/// [`serve`] with explicit sizing, timeout and cap knobs.
///
/// # Errors
///
/// Any bind failure.
pub fn serve_with(
    store: Arc<Store>,
    addr: impl ToSocketAddrs,
    config: ServeConfig,
) -> std::io::Result<ServerHandle> {
    serve_source(store, addr, config)
}

/// Binds and starts a server over any shared [`FetchSource`] — the
/// source-generic entry point behind [`serve`] / [`serve_with`].
///
/// This is the larger-than-RAM deployment path: hand it an
/// `Arc<Reader<'static>>` opened with
/// [`ValidationMode::LazyCrc`](crate::ValidationMode::LazyCrc) over a
/// mapped container and the daemon serves multi-GB libraries without
/// decoding them into a resident [`Store`] — each response appends the
/// container's own validated payload bytes to the frame.
///
/// ```
/// use compaqt_core::compress::{Compressor, Variant};
/// use compaqt_io::serve::{serve_source, Client, ServeConfig};
/// use compaqt_io::{write_library, Reader, ReaderOptions};
/// use compaqt_pulse::device::Device;
/// use compaqt_pulse::vendor::Vendor;
/// use std::sync::Arc;
///
/// let lib = Device::synthesize(Vendor::Ibm, 2, 0x5E21E).pulse_library();
/// let bytes = write_library(&lib, &Compressor::new(Variant::IntDctW { ws: 16 }))?;
/// let reader = Arc::new(Reader::open(bytes, ReaderOptions::lazy_crc())?);
///
/// let handle = serve_source(reader, "127.0.0.1:0", ServeConfig::default())?;
/// let mut client = Client::connect(handle.local_addr())?;
/// let (gate, wf) = lib.iter().next().unwrap();
/// let (mut i, mut q) = (Vec::new(), Vec::new());
/// client.fetch_into(gate, &mut i, &mut q)?;
/// assert_eq!(i.len(), wf.len());
/// drop(client);
/// handle.shutdown();
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
///
/// # Errors
///
/// Any bind failure.
pub fn serve_source<S: FetchSource + Send + Sync + 'static>(
    source: Arc<S>,
    addr: impl ToSocketAddrs,
    config: ServeConfig,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let obs = Arc::new(ServeObs::new(&config));
    // Share one ring across tiers: source events (evictions, CRC
    // failures, recalibration publishes) land next to connection events
    // in the same scrape. First attach wins, so a source already traced
    // elsewhere keeps its ring.
    let _ = source.attach_trace(Arc::clone(&obs.ring));
    let accept = {
        let shutdown = Arc::clone(&shutdown);
        let obs = Arc::clone(&obs);
        std::thread::Builder::new()
            .name("compaqt-serve-accept".into())
            .spawn(move || accept_loop(listener, source, config, shutdown, obs))?
    };
    Ok(ServerHandle { addr, shutdown, obs, accept: Some(accept) })
}

/// Decrements the live-connection count when a connection thread ends,
/// however it ends.
struct ConnGuard(Arc<AtomicUsize>);

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::AcqRel);
    }
}

fn accept_loop<S: FetchSource + Send + Sync + 'static>(
    listener: TcpListener,
    source: Arc<S>,
    config: ServeConfig,
    shutdown: Arc<AtomicBool>,
    obs: Arc<ServeObs>,
) {
    let active = Arc::new(AtomicUsize::new(0));
    for conn in listener.incoming() {
        if shutdown.load(Ordering::Acquire) {
            break;
        }
        let Ok(stream) = conn else { continue };
        if active.fetch_add(1, Ordering::AcqRel) >= config.max_connections {
            active.fetch_sub(1, Ordering::AcqRel);
            obs.counters.busy_rejected.fetch_add(1, Ordering::Relaxed);
            obs.ring.push(TraceKind::BusyRejected, config.max_connections as u64, 0);
            reject_busy(stream, &config);
            continue;
        }
        obs.counters.accepted.fetch_add(1, Ordering::Relaxed);
        let guard = ConnGuard(Arc::clone(&active));
        let source = Arc::clone(&source);
        let shutdown = Arc::clone(&shutdown);
        let obs = Arc::clone(&obs);
        let spawned =
            std::thread::Builder::new().name("compaqt-serve-conn".into()).spawn(move || {
                let _guard = guard;
                serve_conn(stream, &*source, &config, &shutdown, &obs);
            });
        // Spawn failure (thread exhaustion) just drops the connection;
        // the guard moved into the closure only on success, so drop it
        // here explicitly on failure.
        drop(spawned);
    }
}

/// Tells an over-cap client why it is being turned away, best-effort.
fn reject_busy(mut stream: TcpStream, config: &ServeConfig) {
    let _ = stream.set_write_timeout(timeout(config.write_timeout));
    let mut out = BytesMut::new();
    encode_error(&mut out, ErrorCode::Busy, "connection cap reached, retry later");
    let _ = stream.write_all(&out);
    let _ = stream.shutdown(Shutdown::Both);
}

/// `Duration::ZERO` means "wait forever", which std spells `None`.
fn timeout(d: Duration) -> Option<Duration> {
    if d.is_zero() {
        None
    } else {
        Some(d)
    }
}

/// One connection's serve loop: read a frame, respond, repeat until
/// the client leaves, a timeout fires, framing breaks, or the server
/// shuts down.
fn serve_conn<S: FetchSource + ?Sized>(
    mut stream: TcpStream,
    source: &S,
    config: &ServeConfig,
    shutdown: &AtomicBool,
    obs: &Arc<ServeObs>,
) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(timeout(config.read_timeout));
    let _ = stream.set_write_timeout(timeout(config.write_timeout));
    let mut read_buf = Vec::new();
    let mut responder = Responder::new(config);
    responder.attach_obs(Arc::clone(obs));
    let mut fetches_reported = 0u64;
    let counters = &obs.counters;
    obs.connections.add(1);
    obs.ring.push(TraceKind::ConnOpen, obs.connections.get(), 0);
    while !shutdown.load(Ordering::Acquire) {
        match crate::wire::read_frame(&mut stream, &mut read_buf, config.max_frame_bytes) {
            Ok(FrameRead::Eof) => break,
            Ok(FrameRead::Frame(kind)) => {
                let payload = &read_buf[FRAME_HEADER_BYTES..read_buf.len() - FRAME_TRAILER_BYTES];
                // The histogram covers handling plus the response
                // write — what the peer actually waits for after its
                // request frame lands.
                let started = Instant::now();
                match responder.handle(source, kind, payload) {
                    Ok(frame) => {
                        if stream.write_all(frame).is_err() {
                            break;
                        }
                        obs.record_request(kind, started.elapsed().as_nanos() as u64);
                        counters.requests.fetch_add(1, Ordering::Relaxed);
                        let fetched = responder.fetches_encoded();
                        counters.fetches.fetch_add(fetched - fetches_reported, Ordering::Relaxed);
                        fetches_reported = fetched;
                    }
                    Err(e) => {
                        // Well-framed but untrustworthy payload: report
                        // the typed rejection best-effort and close.
                        counters.protocol_errors.fetch_add(1, Ordering::Relaxed);
                        obs.ring.push(TraceKind::ProtocolError, u64::from(kind.tag()), 0);
                        let detail = e.to_string();
                        let _ =
                            stream.write_all(responder.error_frame(ErrorCode::Malformed, &detail));
                        break;
                    }
                }
            }
            Err(ReadFrameError::Protocol(e)) => {
                // Hostile or damaged framing: same report-and-close.
                counters.protocol_errors.fetch_add(1, Ordering::Relaxed);
                obs.ring.push(TraceKind::ProtocolError, 0, 0);
                let detail = e.to_string();
                let _ = stream.write_all(responder.error_frame(ErrorCode::Malformed, &detail));
                break;
            }
            Err(ReadFrameError::Io(e)) => {
                // Nothing to say to the peer either way, but a fired
                // deadline (idle client) is ledgered apart from resets
                // and broken pipes. Unix spells a fired SO_RCVTIMEO
                // `WouldBlock`; Windows spells it `TimedOut`.
                if matches!(e.kind(), std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut)
                {
                    counters.timeouts.fetch_add(1, Ordering::Relaxed);
                }
                break;
            }
        }
    }
    obs.connections.sub(1);
    obs.ring.push(TraceKind::ConnClose, obs.connections.get(), 0);
    let _ = stream.shutdown(Shutdown::Both);
}

// ------------------------------------------------------------- client

/// Connection knobs for a [`Client`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientConfig {
    /// How long to wait for a response frame (zero = forever).
    pub read_timeout: Duration,
    /// How long to wait for a request write (zero = forever).
    pub write_timeout: Duration,
    /// Cap on accepted response payload sizes. Larger than the
    /// server-side default because one `FetchMany` response carries a
    /// whole batch of streams.
    pub max_frame_bytes: u32,
}

impl Default for ClientConfig {
    /// 10 s timeouts, 64 MiB response frames.
    fn default() -> Self {
        ClientConfig {
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            max_frame_bytes: 64 * 1024 * 1024,
        }
    }
}

/// A blocking controller-side client: one TCP connection plus every
/// reusable buffer the fetch-and-decode path needs, so steady-state
/// [`Client::fetch_into`] allocates nothing on the client either.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    read_buf: Vec<u8>,
    out: BytesMut,
    /// Reused parse slot for served streams.
    slot: CompressedWaveform,
    spares: SlotSpares,
    scratch: DecodeScratch,
    /// One decompression engine per variant seen (built on demand).
    engines: Vec<(Variant, DecompressionEngine)>,
    max_frame_bytes: u32,
    next_nonce: u64,
}

impl Client {
    /// Connects with [`ClientConfig`] defaults.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] on connect/configure failure.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ServeError> {
        Client::connect_with(addr, ClientConfig::default())
    }

    /// Connects with explicit timeouts and frame cap.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] on connect/configure failure.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        config: ClientConfig,
    ) -> Result<Client, ServeError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(timeout(config.read_timeout))?;
        stream.set_write_timeout(timeout(config.write_timeout))?;
        Ok(Client {
            stream,
            read_buf: Vec::new(),
            out: BytesMut::new(),
            slot: CompressedWaveform::empty(),
            spares: SlotSpares::default(),
            scratch: DecodeScratch::default(),
            engines: Vec::new(),
            max_frame_bytes: config.max_frame_bytes,
            next_nonce: 1,
        })
    }

    /// Writes the request staged in `self.out` and reads the response
    /// into `self.read_buf`, unwrapping error responses and checking
    /// the kind.
    fn roundtrip(&mut self, expect: FrameKind) -> Result<(), ServeError> {
        self.stream.write_all(&self.out)?;
        let kind = match crate::wire::read_frame(
            &mut self.stream,
            &mut self.read_buf,
            self.max_frame_bytes,
        )? {
            FrameRead::Frame(kind) => kind,
            FrameRead::Eof => {
                return Err(ServeError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                )))
            }
        };
        if kind == FrameKind::Error {
            let (code, detail) = parse_error(self.payload())?;
            return Err(ServeError::Remote { code, detail });
        }
        if kind != expect {
            return Err(ServeError::Protocol(ProtocolError::UnexpectedKind(kind.tag())));
        }
        Ok(())
    }

    /// The last response's payload bytes.
    fn payload(&self) -> &[u8] {
        &self.read_buf[FRAME_HEADER_BYTES..self.read_buf.len() - FRAME_TRAILER_BYTES]
    }

    /// Round-trips a nonce, verifying liveness and protocol agreement.
    ///
    /// # Errors
    ///
    /// Transport, protocol or server-reported failures.
    pub fn ping(&mut self) -> Result<(), ServeError> {
        let nonce = self.next_nonce;
        self.next_nonce = self.next_nonce.wrapping_add(0x9E37_79B9_7F4A_7C15);
        encode_ping(&mut self.out, nonce);
        self.roundtrip(FrameKind::Pong)?;
        let mut payload = self.payload();
        if payload.len() != 8 || payload.get_u64_le() != nonce {
            return Err(ServeError::Protocol(ProtocolError::Malformed(
                "pong did not echo the ping nonce",
            )));
        }
        Ok(())
    }

    /// Fetches one gate's stream and decodes it into caller-owned
    /// buffers (cleared and refilled) — the wire twin of
    /// [`Store::fetch_into`], bit-identical to it, and zero-allocation
    /// in steady state on both ends.
    ///
    /// # Errors
    ///
    /// Transport, protocol, server-reported (unknown gate) or local
    /// decode failures.
    pub fn fetch_into(
        &mut self,
        gate: &GateId,
        i_out: &mut Vec<f64>,
        q_out: &mut Vec<f64>,
    ) -> Result<EngineStats, ServeError> {
        encode_fetch_gate(&mut self.out, gate).map_err(ProtocolError::from)?;
        self.roundtrip(FrameKind::Gate)?;
        let Client { read_buf, slot, spares, engines, scratch, .. } = self;
        let mut payload = &read_buf[FRAME_HEADER_BYTES..read_buf.len() - FRAME_TRAILER_BYTES];
        take_plain_into(&mut payload, slot, spares).map_err(ProtocolError::from)?;
        if !payload.is_empty() {
            return Err(ServeError::Protocol(ProtocolError::TrailingBytes));
        }
        let engine = Client::engine_for(engines, slot.variant)?;
        engine.decompress_into(slot, scratch, i_out, q_out).map_err(ServeError::Codec)
    }

    /// Fetches one gate's **compressed** stream, owned — for callers
    /// that want to stage or re-serve it rather than decode now.
    ///
    /// # Errors
    ///
    /// Transport, protocol or server-reported failures.
    pub fn fetch(&mut self, gate: &GateId) -> Result<CompressedWaveform, ServeError> {
        encode_fetch_gate(&mut self.out, gate).map_err(ProtocolError::from)?;
        self.roundtrip(FrameKind::Gate)?;
        let Client { read_buf, slot, spares, .. } = self;
        let mut payload = &read_buf[FRAME_HEADER_BYTES..read_buf.len() - FRAME_TRAILER_BYTES];
        take_plain_into(&mut payload, slot, spares).map_err(ProtocolError::from)?;
        if !payload.is_empty() {
            return Err(ServeError::Protocol(ProtocolError::TrailingBytes));
        }
        Ok(slot.clone())
    }

    /// Fetches a batch of gates in one round trip, decoding each into
    /// its caller-owned buffer pair (`outs[k]` receives `gates[k]`) —
    /// the wire twin of [`Store::fetch_many`], with the same merged
    /// stats and the same per-gate accounting.
    ///
    /// # Errors
    ///
    /// Transport, protocol, server-reported or local decode failures;
    /// on error `outs` is unspecified.
    ///
    /// # Panics
    ///
    /// Panics if `gates` and `outs` have different lengths.
    pub fn fetch_many_into(
        &mut self,
        gates: &[GateId],
        outs: &mut [(Vec<f64>, Vec<f64>)],
    ) -> Result<EngineStats, ServeError> {
        assert_eq!(gates.len(), outs.len(), "one output buffer pair per requested gate");
        encode_fetch_many(&mut self.out, gates).map_err(ProtocolError::from)?;
        self.roundtrip(FrameKind::GateBatch)?;
        let Client { read_buf, slot, spares, engines, scratch, .. } = self;
        let mut payload = &read_buf[FRAME_HEADER_BYTES..read_buf.len() - FRAME_TRAILER_BYTES];
        if payload.remaining() < 4 {
            return Err(ServeError::Protocol(ProtocolError::Truncated));
        }
        let count = payload.get_u32_le() as usize;
        if count != gates.len() {
            return Err(ServeError::Protocol(ProtocolError::Malformed(
                "batch response count does not match the request",
            )));
        }
        let mut merged = EngineStats::default();
        for (i_out, q_out) in outs.iter_mut() {
            take_plain_into(&mut payload, slot, spares).map_err(ProtocolError::from)?;
            let engine = Client::engine_for(engines, slot.variant)?;
            let stats =
                engine.decompress_into(slot, scratch, i_out, q_out).map_err(ServeError::Codec)?;
            merged.merge(&stats);
        }
        if !payload.is_empty() {
            return Err(ServeError::Protocol(ProtocolError::TrailingBytes));
        }
        Ok(merged)
    }

    /// Lists every gate the server holds, sorted.
    ///
    /// # Errors
    ///
    /// Transport, protocol or server-reported failures.
    pub fn gates(&mut self) -> Result<Vec<GateId>, ServeError> {
        encode_list_gates(&mut self.out);
        self.roundtrip(FrameKind::GateList)?;
        Ok(parse_gate_list(self.payload())?)
    }

    /// Fetches the served library's [`LibraryDigest`].
    ///
    /// # Errors
    ///
    /// Transport, protocol or server-reported failures.
    pub fn digest(&mut self) -> Result<LibraryDigest, ServeError> {
        encode_library_digest(&mut self.out);
        self.roundtrip(FrameKind::Digest)?;
        Ok(parse_digest(self.payload())?)
    }

    /// Scrapes the server's telemetry: source counters, gauges and
    /// latency histograms, the serve tier's own ledger, and the last N
    /// trace events. Render the result with
    /// [`render_text`](compaqt_obs::render_text) for a Prometheus-style
    /// exposition.
    ///
    /// # Errors
    ///
    /// Transport, protocol or server-reported failures.
    pub fn metrics(&mut self) -> Result<Snapshot, ServeError> {
        encode_metrics(&mut self.out);
        self.roundtrip(FrameKind::MetricsReport)?;
        Ok(parse_metrics_report(self.payload())?)
    }

    /// The shared engine for `variant`, built on first sight.
    fn engine_for(
        engines: &mut Vec<(Variant, DecompressionEngine)>,
        variant: Variant,
    ) -> Result<&DecompressionEngine, ServeError> {
        if let Some(pos) = engines.iter().position(|(v, _)| *v == variant) {
            return Ok(&engines[pos].1);
        }
        let engine = DecompressionEngine::for_variant(variant).map_err(ServeError::Codec)?;
        engines.push((variant, engine));
        Ok(&engines.last().expect("just pushed").1)
    }
}
