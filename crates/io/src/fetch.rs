//! The unified fetch surface: one trait over every gate-serving
//! source.
//!
//! The serve loop, the scenario harness and the fleet tooling all ask
//! the same four questions of whatever holds the library — *decode
//! this gate into my buffers*, *which gates do you hold*, *do you hold
//! this one*, *append this gate's wire-encoded stream to my frame* —
//! but historically only [`Store`] could answer them, so serving a
//! container meant decoding every payload into a resident store
//! first. [`FetchSource`] makes the answers source-generic:
//!
//! - [`Store`] answers from its decoded hot set and compressed shards
//!   (its internal scratch pool makes the `scratch` argument unused).
//! - [`Reader`] answers straight from the container bytes — including
//!   a memory-mapped, lazily-CRC-checked multi-GB library that is
//!   never resident. Its [`FetchSource::put_stream`] is **zero-parse**:
//!   the container payload encoding and the wire stream encoding are
//!   the same layout, so serving a gate appends validated raw bytes.
//!
//! Errors converge on one canonical [`FetchError`] with single-site
//! conversions from [`StoreError`] and [`ContainerError`], replacing
//! the per-call-site mappings the responder and scenario code used to
//! carry.

use crate::format::put_plain;
use crate::reader::{ContainerScratch, Reader};
use crate::ContainerError;
use bytes::{BufMut, BytesMut};
use compaqt_core::engine::EngineStats;
use compaqt_core::store::{Store, StoreError};
use compaqt_core::CompressError;
use compaqt_obs::{Snapshot, TraceRing};
use compaqt_pulse::library::GateId;
use std::fmt;
use std::sync::Arc;

/// The canonical error for source-generic fetching — every
/// [`FetchSource`] implementation funnels its native error type
/// through one conversion into this enum.
#[derive(Debug, Clone, PartialEq)]
pub enum FetchError {
    /// The source holds no entry for the gate.
    UnknownGate(GateId),
    /// The entry exists but is not a plain stream the fetch path can
    /// serve (lapped/adaptive container entries).
    Unservable(GateId),
    /// The entry's payload bytes are damaged (lazy-CRC first touch or
    /// cached verdict).
    Crc(GateId),
    /// The codec layer rejected the stream.
    Codec(CompressError),
    /// The source's backing bytes are structurally malformed.
    Malformed(&'static str),
}

impl fmt::Display for FetchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FetchError::UnknownGate(gate) => write!(f, "source holds no entry for gate {gate}"),
            FetchError::Unservable(gate) => {
                write!(f, "entry for gate {gate} is not a plain servable stream")
            }
            FetchError::Crc(gate) => write!(f, "payload checksum mismatch for gate {gate}"),
            FetchError::Codec(e) => write!(f, "codec rejected a stream: {e}"),
            FetchError::Malformed(reason) => write!(f, "malformed source bytes: {reason}"),
        }
    }
}

impl std::error::Error for FetchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FetchError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StoreError> for FetchError {
    fn from(e: StoreError) -> Self {
        match e {
            StoreError::UnknownGate(gate) => FetchError::UnknownGate(gate),
            StoreError::Codec(e) => FetchError::Codec(e),
        }
    }
}

impl From<ContainerError> for FetchError {
    fn from(e: ContainerError) -> Self {
        match e {
            ContainerError::UnknownGate(gate) => FetchError::UnknownGate(gate),
            ContainerError::Unservable { gate } => FetchError::Unservable(gate),
            ContainerError::DuplicateGate(gate) => {
                // Unreachable from a validated reader (strict index
                // ordering proves uniqueness); mapped for totality.
                FetchError::Unservable(gate)
            }
            ContainerError::CrcMismatch { gate } => FetchError::Crc(gate),
            ContainerError::Codec(e) => FetchError::Codec(e),
            ContainerError::BadMagic => FetchError::Malformed("not a CWL container"),
            ContainerError::VersionSkew { .. } => FetchError::Malformed("container version skew"),
            ContainerError::Truncated => FetchError::Malformed("container truncated"),
            ContainerError::IndexInvalid(reason) => FetchError::Malformed(reason),
            ContainerError::IndexCrcMismatch => FetchError::Malformed("index checksum mismatch"),
            ContainerError::PayloadInvalid(reason) => FetchError::Malformed(reason),
            ContainerError::Unrepresentable(reason) => FetchError::Malformed(reason),
        }
    }
}

impl From<CompressError> for FetchError {
    fn from(e: CompressError) -> Self {
        FetchError::Codec(e)
    }
}

/// A source of servable gate streams: anything the serve loop or the
/// scenario harness can answer fetches from. See the [module
/// docs](self).
pub trait FetchSource {
    /// Decodes one gate's waveform into the caller's buffers.
    ///
    /// `scratch` is caller-owned working memory for sources that parse
    /// on the fly ([`Reader`]); sources with internal pooling
    /// ([`Store`]) ignore it. With warm buffers this is
    /// zero-allocation for both implementations.
    ///
    /// # Errors
    ///
    /// [`FetchError::UnknownGate`] for an absent gate; source-specific
    /// integrity/codec failures otherwise.
    fn fetch_gate(
        &self,
        gate: &GateId,
        scratch: &mut ContainerScratch,
        i_out: &mut Vec<f64>,
        q_out: &mut Vec<f64>,
    ) -> Result<EngineStats, FetchError>;

    /// All gates this source holds, sorted.
    fn gate_list(&self) -> Vec<GateId>;

    /// Whether the source holds an entry for the gate.
    fn contains_gate(&self, gate: &GateId) -> bool;

    /// Appends the gate's wire-encoded plain stream to `out` — the
    /// exact bytes a serve-loop response frame carries.
    ///
    /// # Errors
    ///
    /// [`FetchError::UnknownGate`] for an absent gate;
    /// [`FetchError::Unservable`] for non-plain entries;
    /// [`FetchError::Crc`] for damaged payload bytes in lazy mode.
    fn put_stream(&self, gate: &GateId, out: &mut BytesMut) -> Result<(), FetchError>;

    /// Contributes this source's telemetry (counters, gauges, latency
    /// histograms) to an observability snapshot. Cold path — scrape
    /// handlers only. The default contributes nothing, so sources
    /// without instrumentation need no code; [`Store`] and [`Reader`]
    /// override it with their native `collect_obs`.
    fn collect_obs(&self, out: &mut Snapshot) {
        let _ = out;
    }

    /// Attaches an event trace ring to the source. First attach wins:
    /// returns `false` (ring dropped) when the source already has one
    /// — or, the default, when the source does not support tracing.
    fn attach_trace(&self, ring: Arc<TraceRing>) -> bool {
        let _ = ring;
        false
    }
}

/// Forwarding impl: a shared handle serves exactly like the source it
/// wraps, so callers holding `Arc<Store>` / `Arc<Reader>` (the serve
/// loop's natural shape) pass `&handle` without a deref dance.
impl<S: FetchSource + ?Sized> FetchSource for std::sync::Arc<S> {
    fn fetch_gate(
        &self,
        gate: &GateId,
        scratch: &mut ContainerScratch,
        i_out: &mut Vec<f64>,
        q_out: &mut Vec<f64>,
    ) -> Result<EngineStats, FetchError> {
        (**self).fetch_gate(gate, scratch, i_out, q_out)
    }

    fn gate_list(&self) -> Vec<GateId> {
        (**self).gate_list()
    }

    fn contains_gate(&self, gate: &GateId) -> bool {
        (**self).contains_gate(gate)
    }

    fn put_stream(&self, gate: &GateId, out: &mut BytesMut) -> Result<(), FetchError> {
        (**self).put_stream(gate, out)
    }

    fn collect_obs(&self, out: &mut Snapshot) {
        (**self).collect_obs(out)
    }

    fn attach_trace(&self, ring: Arc<TraceRing>) -> bool {
        (**self).attach_trace(ring)
    }
}

impl FetchSource for Store {
    fn fetch_gate(
        &self,
        gate: &GateId,
        _scratch: &mut ContainerScratch,
        i_out: &mut Vec<f64>,
        q_out: &mut Vec<f64>,
    ) -> Result<EngineStats, FetchError> {
        self.fetch_into(gate, i_out, q_out).map_err(FetchError::from)
    }

    fn gate_list(&self) -> Vec<GateId> {
        self.gates()
    }

    fn contains_gate(&self, gate: &GateId) -> bool {
        self.contains(gate)
    }

    fn put_stream(&self, gate: &GateId, out: &mut BytesMut) -> Result<(), FetchError> {
        // Outer `?`: unknown gate; inner `?`: a stream too large for
        // the wire encoding (unrepresentable length fields).
        self.with_stream(gate, |z| put_plain(out, z))??;
        Ok(())
    }

    fn collect_obs(&self, out: &mut Snapshot) {
        Store::collect_obs(self, out)
    }

    fn attach_trace(&self, ring: Arc<TraceRing>) -> bool {
        Store::attach_trace(self, ring)
    }
}

impl FetchSource for Reader<'_> {
    fn fetch_gate(
        &self,
        gate: &GateId,
        scratch: &mut ContainerScratch,
        i_out: &mut Vec<f64>,
        q_out: &mut Vec<f64>,
    ) -> Result<EngineStats, FetchError> {
        self.fetch_into(gate, scratch, i_out, q_out).map_err(FetchError::from)
    }

    fn gate_list(&self) -> Vec<GateId> {
        self.gates().cloned().collect()
    }

    fn contains_gate(&self, gate: &GateId) -> bool {
        self.contains(gate)
    }

    fn put_stream(&self, gate: &GateId, out: &mut BytesMut) -> Result<(), FetchError> {
        // Zero-parse: container payload bytes *are* wire stream bytes
        // (both sides of the bridge write the same `put_plain` layout),
        // so a validated payload is appended without touching a codec.
        let bytes = self.stream_bytes(gate)?;
        out.put_slice(bytes);
        Ok(())
    }

    fn collect_obs(&self, out: &mut Snapshot) {
        Reader::collect_obs(self, out)
    }

    fn attach_trace(&self, ring: Arc<TraceRing>) -> bool {
        Reader::attach_trace(self, ring)
    }
}
