//! # COMPAQT — Compressed Waveform Memory Architecture for Scalable Qubit Control
//!
//! A full-system Rust reproduction of Maurya & Tannu, MICRO 2022
//! (arXiv:2212.03897).
//!
//! Superconducting qubits are driven by microwave pulses whose envelopes
//! (waveforms) are streamed from on-chip memory to DACs at multiple
//! gigasamples per second. The required memory bandwidth scales linearly
//! with the qubit count and becomes *the* scalability bottleneck of
//! RFSoC-based controllers, and a major power sink in cryogenic ASIC
//! controllers. COMPAQT's observation: control waveforms are deliberately
//! smooth (tight spectral footprint), hence highly compressible. Compress
//! them at compile time with a windowed integer DCT + run-length coding,
//! store the compressed stream, and decompress in hardware right before the
//! DAC — trading cheap logic for scarce memory bandwidth.
//!
//! This facade crate re-exports the six subsystem crates:
//!
//! * [`dsp`] — transforms, run-length coding, fixed point ([`compaqt_dsp`]).
//! * [`pulse`] — waveform shapes, synthetic device calibrations, pulse
//!   libraries, memory-demand models ([`compaqt_pulse`]).
//! * [`core`] — the compression compiler, compressed banked waveform
//!   memory and the hardware decompression-engine model ([`compaqt_core`]).
//! * [`io`] — the versioned zero-copy "CWL" container format that ships
//!   compressed libraries between processes and hosts ([`compaqt_io`]).
//! * [`obs`] — zero-overhead telemetry: metrics registry, log2 latency
//!   histograms, lock-free event tracing ([`compaqt_obs`]).
//! * [`quantum`] — pulse-to-unitary simulation, randomized benchmarking,
//!   benchmark circuits and scheduling ([`compaqt_quantum`]).
//! * [`hw`] — RFSoC and cryogenic-ASIC hardware models ([`compaqt_hw`]).
//!
//! # Quickstart
//!
//! Compress a single-qubit DRAG pulse and stream it through the modelled
//! decompression engine:
//!
//! ```
//! use compaqt::pulse::shapes::{Drag, PulseShape};
//! use compaqt::core::compress::{Compressor, Variant};
//!
//! // A typical IBM-style 160-sample X-gate envelope.
//! let drag = Drag::new(160, 0.6, 40.0, 0.18);
//! let waveform = drag.to_waveform("X(q0)", 4.54);
//!
//! // Compress with the windowed integer DCT, window size 16.
//! let compressor = Compressor::new(Variant::IntDctW { ws: 16 });
//! let compressed = compressor.compress(&waveform)?;
//! assert!(compressed.ratio().ratio() > 4.0, "smooth pulses compress well");
//!
//! // Decompress (bit-exact model of the hardware pipeline) and check
//! // distortion is negligible.
//! let restored = compressed.decompress()?;
//! assert!(waveform.mse(&restored) < 5e-5);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use compaqt_core as core;
pub use compaqt_dsp as dsp;
pub use compaqt_hw as hw;
pub use compaqt_io as io;
pub use compaqt_obs as obs;
pub use compaqt_pulse as pulse;
pub use compaqt_quantum as quantum;
